"""Static verification of p-thread invariants (PT001–PT006).

The paper's selection framework is only sound if every p-thread body
is a control-less backward slice whose dataflow reproduces the problem
load's address (§2–§3).  The slicer, induction unrolling, optimizer,
and merger all transform bodies; this module machine-checks that the
invariants survive.  Each check has a stable diagnostic code:

========  ========================================================
PT001     body is straight-line / control-free (paper §2: "since
          p-threads are control-less ...").  A *terminal* conditional
          branch is legal — that is branch pre-execution (footnote 1),
          where the branch is evaluated, never followed.
PT002     every register read is defined upstream in the body or is a
          seedable live-in.  Virtual registers (merger-introduced,
          index ≥ 32) have no architectural backing, so a virtual
          live-in can never receive a seed value at launch.
PT003     slice soundness: the chain of address computations reaches
          the target problem load — every target PC appears in the
          body, the body's final instruction is a target, and every
          instruction feeds some target through the def-use/memory
          chains (§3.1's candidate chain construction).
PT004     a store in a body must be consumed by a later body load
          (store-load forwarding through the speculative store
          buffer); speculative stores never commit, so an unconsumed
          store is wasted overhead.
PT005     body length respects the ``SIZEpt`` machine constraint
          (§4.1: selection applies the length limit after
          optimization).
PT006     the trigger PC exists in the source program and "dominates"
          the root: the root must be reachable from the trigger
          (error otherwise), and every root-to-root cyclic path
          should pass through the trigger (advisory when not — such
          loads are covered only on the trigger's path).
========  ========================================================

``SL001`` covers the dynamic-slice structural invariants the slicer
must uphold (descending dynamic order, in-slice producer positions).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.dataflow import ControlFlowGraph
from repro.analysis.report import Diagnostic, Severity
from repro.isa.instruction import Instruction
from repro.isa.program import Program
from repro.model.params import SelectionConstraints
from repro.pthreads.body import VIRTUAL_REG_BASE, analyze_dataflow
from repro.pthreads.pthread import StaticPThread
from repro.slicing.slicer import DynamicSlice


def _resolve_targets(
    instructions: Sequence[Instruction],
    targets: Optional[Sequence[int]],
    target_pcs: Optional[Sequence[int]],
    diagnostics: List[Diagnostic],
) -> List[int]:
    """Target body positions from explicit positions and/or static PCs.

    Unknown PCs and out-of-range positions are reported as PT003
    errors.  With nothing to resolve, the conventional target is the
    final instruction.
    """
    n = len(instructions)
    positions: Set[int] = set()
    if targets is not None:
        for position in targets:
            if 0 <= position < n:
                positions.add(position)
            else:
                diagnostics.append(
                    Diagnostic(
                        "PT003",
                        Severity.ERROR,
                        f"target position {position} outside body "
                        f"of size {n}",
                    )
                )
    if target_pcs is not None:
        for pc in target_pcs:
            matches = [
                position
                for position, inst in enumerate(instructions)
                if inst.pc == pc
            ]
            if not matches:
                diagnostics.append(
                    Diagnostic(
                        "PT003",
                        Severity.ERROR,
                        f"target pc#{pc:04d} has no instruction in the "
                        "body: the address chain cannot reach it",
                        pc=pc,
                    )
                )
            else:
                # Unrolled and merged bodies repeat a target PC, one
                # occurrence per covered dynamic instance — all of
                # them are targets.
                positions.update(matches)
    if not positions and n:
        positions.add(n - 1)
    return sorted(positions)


def verify_body(
    instructions: Sequence[Instruction],
    targets: Optional[Sequence[int]] = None,
    target_pcs: Optional[Sequence[int]] = None,
    max_length: Optional[int] = None,
    allow_terminal_branch: bool = True,
) -> List[Diagnostic]:
    """Check a p-thread body against the PT001–PT005 invariants.

    Operates on a raw instruction sequence so corrupted bodies (which
    :class:`~repro.pthreads.body.PThreadBody` would refuse to build)
    can still be diagnosed.

    Args:
        instructions: body instructions, oldest first.
        targets: explicit target body positions, if known.
        target_pcs: static PCs of the targeted problem loads (or the
            targeted branch); resolved against instruction ``pc``
            provenance.
        max_length: the ``SIZEpt`` constraint (PT005); skipped if None.
        allow_terminal_branch: accept a conditional branch as the final
            instruction (branch pre-execution).
    """
    diagnostics: List[Diagnostic] = []
    n = len(instructions)
    if n == 0:
        diagnostics.append(
            Diagnostic("PT003", Severity.ERROR, "body is empty")
        )
        return diagnostics

    # PT001 — control-free straight-line code.
    for position, inst in enumerate(instructions):
        terminal_branch = (
            allow_terminal_branch and inst.is_branch and position == n - 1
        )
        if (inst.is_control or inst.is_halt) and not terminal_branch:
            diagnostics.append(
                Diagnostic(
                    "PT001",
                    Severity.ERROR,
                    f"control-flow instruction in body: {inst}",
                    pc=inst.pc if inst.pc >= 0 else None,
                    position=position,
                )
            )

    # PT002 — reads must be defined upstream or be seedable live-ins.
    defined: Set[int] = set()
    for position, inst in enumerate(instructions):
        for src in inst.sources():
            if src is None:
                diagnostics.append(
                    Diagnostic(
                        "PT002",
                        Severity.ERROR,
                        f"missing source operand on {inst}",
                        pc=inst.pc if inst.pc >= 0 else None,
                        position=position,
                    )
                )
            elif src >= VIRTUAL_REG_BASE and src not in defined:
                diagnostics.append(
                    Diagnostic(
                        "PT002",
                        Severity.ERROR,
                        f"virtual register v{src - VIRTUAL_REG_BASE} read "
                        "before any body definition: virtual registers "
                        "cannot be seeded from the main thread",
                        pc=inst.pc if inst.pc >= 0 else None,
                        position=position,
                    )
                )
        dest = inst.dest()
        if dest is not None and dest != 0:
            defined.add(dest)

    # Dataflow-dependent checks are meaningless on a body whose
    # structure is already broken.
    if diagnostics:
        return diagnostics

    target_positions = _resolve_targets(
        instructions, targets, target_pcs, diagnostics
    )
    dataflow = analyze_dataflow(instructions)

    # PT003 — every instruction feeds a target; the final instruction
    # is a target (the root of the slice).
    live: Set[int] = set()
    work = list(target_positions)
    while work:
        position = work.pop()
        if position in live:
            continue
        live.add(position)
        work.extend(dataflow.reg_deps[position])
        mem = dataflow.mem_deps[position]
        if mem is not None:
            work.append(mem)
    if n - 1 not in target_positions:
        diagnostics.append(
            Diagnostic(
                "PT003",
                Severity.WARNING,
                "final body instruction is not a target: the slice root "
                "should terminate the body",
                position=n - 1,
            )
        )
    for position, inst in enumerate(instructions):
        if position not in live:
            diagnostics.append(
                Diagnostic(
                    "PT003",
                    Severity.WARNING,
                    f"instruction feeds no target (dead in the slice): "
                    f"{inst}",
                    pc=inst.pc if inst.pc >= 0 else None,
                    position=position,
                )
            )

    # PT004 — stores must forward to a later body load.
    consumed = {
        dep for dep in dataflow.mem_deps if dep is not None
    }
    for position, inst in enumerate(instructions):
        if inst.is_store and position not in consumed:
            diagnostics.append(
                Diagnostic(
                    "PT004",
                    Severity.WARNING,
                    f"store is never consumed by a later body load: "
                    f"{inst} (speculative stores do not commit)",
                    pc=inst.pc if inst.pc >= 0 else None,
                    position=position,
                )
            )

    # PT005 — SIZEpt constraint.
    if max_length is not None and n > max_length:
        diagnostics.append(
            Diagnostic(
                "PT005",
                Severity.ERROR,
                f"body length {n} exceeds the SIZEpt constraint "
                f"({max_length})",
            )
        )
    return diagnostics


def _verify_trigger(
    pthread: StaticPThread,
    program: Program,
    cfg: ControlFlowGraph,
) -> List[Diagnostic]:
    """PT006 — trigger placement in the source program."""
    diagnostics: List[Diagnostic] = []
    trigger = pthread.trigger_pc
    if not 0 <= trigger < len(program):
        diagnostics.append(
            Diagnostic(
                "PT006",
                Severity.ERROR,
                f"trigger pc#{trigger:04d} does not exist in "
                f"{program.name!r} ({len(program)} instructions)",
                pc=trigger,
            )
        )
        return diagnostics
    for root in pthread.target_load_pcs:
        if not 0 <= root < len(program):
            diagnostics.append(
                Diagnostic(
                    "PT006",
                    Severity.ERROR,
                    f"target pc#{root:04d} does not exist in the program",
                    pc=root,
                )
            )
            continue
        root_inst = program[root]
        if not (root_inst.is_load or root_inst.is_branch):
            diagnostics.append(
                Diagnostic(
                    "PT006",
                    Severity.ERROR,
                    f"target pc#{root:04d} is neither a load nor a "
                    f"conditional branch: {root_inst}",
                    pc=root,
                )
            )
            continue
        if not cfg.reaches(trigger, root):
            diagnostics.append(
                Diagnostic(
                    "PT006",
                    Severity.ERROR,
                    f"root pc#{root:04d} is unreachable from trigger "
                    f"pc#{trigger:04d}: no dynamic root instance can "
                    "follow a trigger instance",
                    pc=trigger,
                )
            )
            continue
        # Cyclic dominance: every root-to-root path should pass the
        # trigger, so each covered root instance has a fresh trigger
        # instance before it.  Roots on conditional paths fail this
        # benignly — coverage is partial, not wrong — hence advisory.
        dominated = all(
            successor == trigger
            or not cfg.reaches(successor, root, blocked={trigger})
            for successor in cfg.succs[root]
        )
        if not dominated:
            diagnostics.append(
                Diagnostic(
                    "PT006",
                    Severity.INFO,
                    f"trigger pc#{trigger:04d} does not dominate the "
                    f"root pc#{root:04d} cycle: some root instances "
                    "execute without a preceding trigger",
                    pc=trigger,
                )
            )
    return diagnostics


def verify_pthread(
    pthread: StaticPThread,
    program: Optional[Program] = None,
    constraints: Optional[SelectionConstraints] = None,
    cfg: Optional[ControlFlowGraph] = None,
) -> List[Diagnostic]:
    """Check one static p-thread against all PT invariants.

    Args:
        pthread: the p-thread to verify.
        program: source program, enabling the PT006 trigger checks.
        constraints: selection constraints; supplies the PT005 length
            limit (``None`` skips the length check, since a caller
            without constraints cannot know the machine's ``SIZEpt``).
            ``SIZEpt`` binds per merge component: the selector rejects
            over-long *candidates*, while the merger may then combine
            several compliant candidates into one longer body, so a
            merged p-thread's allowance scales with its component
            count.
        cfg: pre-built CFG of ``program`` (an optimization for callers
            verifying many p-threads of one program).
    """
    body = pthread.body
    target_pcs: Optional[Tuple[int, ...]] = pthread.target_load_pcs or None
    max_length: Optional[int] = None
    if constraints is not None:
        max_length = constraints.max_pthread_length * max(
            1, len(pthread.components)
        )
    diagnostics = verify_body(
        body.instructions,
        target_pcs=target_pcs,
        max_length=max_length,
    )
    if program is not None:
        if cfg is None:
            cfg = ControlFlowGraph.from_program(program)
        diagnostics.extend(_verify_trigger(pthread, program, cfg))
    return diagnostics


def verify_selection(
    program: Program,
    pthreads: Sequence[StaticPThread],
    constraints: Optional[SelectionConstraints] = None,
) -> List[Diagnostic]:
    """Verify every p-thread of a selection, sharing one program CFG."""
    cfg = ControlFlowGraph.from_program(program)
    diagnostics: List[Diagnostic] = []
    for pthread in pthreads:
        diagnostics.extend(
            verify_pthread(
                pthread, program=program, constraints=constraints, cfg=cfg
            )
        )
    return diagnostics


def verify_slice(dynamic_slice: DynamicSlice) -> List[Diagnostic]:
    """Check a dynamic slice's structural invariants (SL001).

    The slicer must return the root first, member dynamic indices in
    strictly descending order (the paper's linearized candidate
    chain), and in-slice producer positions that point at strictly
    *older* members (later positions).
    """
    diagnostics: List[Diagnostic] = []
    indices = dynamic_slice.indices
    if not indices or indices[0] != dynamic_slice.root:
        diagnostics.append(
            Diagnostic(
                "SL001",
                Severity.ERROR,
                f"slice of root {dynamic_slice.root} does not start at "
                "the root",
            )
        )
        return diagnostics
    for position in range(1, len(indices)):
        if indices[position] >= indices[position - 1]:
            diagnostics.append(
                Diagnostic(
                    "SL001",
                    Severity.ERROR,
                    f"slice indices not strictly descending at position "
                    f"{position}: {indices[position - 1]} -> "
                    f"{indices[position]}",
                    position=position,
                )
            )
    if len(dynamic_slice.dep_positions) != len(indices):
        diagnostics.append(
            Diagnostic(
                "SL001",
                Severity.ERROR,
                "dep_positions length does not match slice length",
            )
        )
        return diagnostics
    for position, deps in enumerate(dynamic_slice.dep_positions):
        for producer in deps:
            if not position < producer < len(indices):
                diagnostics.append(
                    Diagnostic(
                        "SL001",
                        Severity.ERROR,
                        f"producer position {producer} of slice position "
                        f"{position} does not point at an older member",
                        position=position,
                    )
                )
    return diagnostics


def summarize(diagnostics: Sequence[Diagnostic]) -> Dict[str, int]:
    """Finding counts by code (stable across runs; handy in tests)."""
    counts: Dict[str, int] = {}
    for diagnostic in diagnostics:
        counts[diagnostic.code] = counts.get(diagnostic.code, 0) + 1
    return counts
