"""Static analysis over the toy ISA: dataflow, p-thread verification,
and workload linting.

Public surface::

    from repro.analysis import (
        ControlFlowGraph, def_use_chains, live_variables,   # dataflow
        verify_body, verify_pthread, verify_selection,       # verifier
        lint_program, lint_source, lint_workload,            # linter
        Diagnostic, Severity, verification_enabled,          # reporting
        validate_functional, validate_timing,                # transval
    )
"""

from repro.analysis.dataflow import (
    ENTRY_DEF,
    ControlFlowGraph,
    DataflowProblem,
    DataflowResult,
    Direction,
    constant_registers,
    def_use_chains,
    live_variables,
    reaching_definitions,
    solve,
)
from repro.analysis.program_lint import (
    lint_program,
    lint_source,
    lint_workload,
)
from repro.analysis.report import (
    VERIFY_ENV,
    Diagnostic,
    Severity,
    VerificationError,
    assert_clean,
    errors,
    max_severity,
    render_json,
    render_text,
    sort_diagnostics,
    verification_enabled,
)
from repro.analysis.transval import (
    CG_CODES,
    TimingParams,
    TransvalResult,
    fallback_reason,
    validate_functional,
    validate_timing,
)
from repro.analysis.verifier import (
    summarize,
    verify_body,
    verify_pthread,
    verify_selection,
    verify_slice,
)

__all__ = [
    "ENTRY_DEF",
    "ControlFlowGraph",
    "DataflowProblem",
    "DataflowResult",
    "Direction",
    "constant_registers",
    "def_use_chains",
    "live_variables",
    "reaching_definitions",
    "solve",
    "lint_program",
    "lint_source",
    "lint_workload",
    "VERIFY_ENV",
    "Diagnostic",
    "Severity",
    "VerificationError",
    "assert_clean",
    "errors",
    "max_severity",
    "render_json",
    "render_text",
    "sort_diagnostics",
    "verification_enabled",
    "CG_CODES",
    "TimingParams",
    "TransvalResult",
    "fallback_reason",
    "validate_functional",
    "validate_timing",
    "summarize",
    "verify_body",
    "verify_pthread",
    "verify_selection",
    "verify_slice",
]
