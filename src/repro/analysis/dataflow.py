"""Generic static dataflow analysis over the toy ISA.

Two layers:

* :class:`ControlFlowGraph` — an instruction-granular CFG over any
  instruction sequence (a full :class:`~repro.isa.program.Program` with
  branches, or a straight-line p-thread body, which degenerates to a
  chain).  Provides reachability, blocked-path queries, and dominators.
* :func:`solve` — a worklist fixpoint solver for any
  :class:`DataflowProblem` (forward or backward).  On a chain CFG the
  worklist converges in one linear scan, which is exactly the paper's
  observation that control-less p-threads replace "traditional
  control-flow and iterative data-flow analyses ... by a simple linear
  scan"; on a full program it is the classic iterative algorithm.

Three problem instances cover everything the verifier and linter need:
reaching definitions (def-use chains), live variables, and constant
propagation (used to resolve statically-known load/store addresses
against the data image).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Generic,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.isa.registers import NUM_REGS

T = TypeVar("T")

#: Pseudo definition site: the initial register file (all registers 0).
ENTRY_DEF = -1


class ControlFlowGraph:
    """Instruction-granular CFG with successor/predecessor edges.

    Args:
        instructions: the instruction sequence (``pc`` = index).
        labels: label name -> instruction index; used as the
            conservative target set for register-indirect jumps (``jr``
            can reach any labelled instruction).
    """

    def __init__(
        self,
        instructions: Sequence[Instruction],
        labels: Optional[Dict[str, int]] = None,
    ) -> None:
        self.instructions = list(instructions)
        n = len(self.instructions)
        label_targets = sorted(set((labels or {}).values()))
        succs: List[Tuple[int, ...]] = []
        #: Indices whose fall-through would leave the program entirely
        #: (no halt, jump, or in-range successor) — a linter condition.
        self.falls_off_end: FrozenSet[int] = frozenset()
        off_end = set()
        for index, inst in enumerate(self.instructions):
            out: List[int] = []
            if inst.is_halt:
                pass
            elif inst.op is Opcode.JR:
                out.extend(t for t in label_targets if 0 <= t < n)
            elif inst.is_jump:
                if inst.target is not None:
                    out.append(int(inst.target))
                if inst.op is Opcode.JAL and index + 1 < n:
                    # The link successor models the eventual return.
                    out.append(index + 1)
            elif inst.is_branch:
                if inst.target is not None:
                    out.append(int(inst.target))
                if index + 1 < n:
                    out.append(index + 1)
                else:
                    off_end.add(index)
            else:
                if index + 1 < n:
                    out.append(index + 1)
                else:
                    off_end.add(index)
            succs.append(tuple(dict.fromkeys(t for t in out if 0 <= t < n)))
        self.succs = succs
        self.falls_off_end = frozenset(off_end)
        preds: List[List[int]] = [[] for _ in range(n)]
        for index, out in enumerate(succs):
            for target in out:
                preds[target].append(index)
        self.preds: List[Tuple[int, ...]] = [tuple(p) for p in preds]

    @classmethod
    def from_program(cls, program: Program) -> "ControlFlowGraph":
        return cls(program.instructions, labels=program.labels)

    @classmethod
    def from_instructions(
        cls, instructions: Sequence[Instruction]
    ) -> "ControlFlowGraph":
        """Chain CFG for a straight-line sequence (p-thread body)."""
        return cls(instructions, labels={})

    def __len__(self) -> int:
        return len(self.instructions)

    def reachable(self, start: int = 0) -> FrozenSet[int]:
        """Instruction indices reachable from ``start``."""
        seen = set()
        work = [start]
        while work:
            index = work.pop()
            if index in seen:
                continue
            seen.add(index)
            work.extend(s for s in self.succs[index] if s not in seen)
        return frozenset(seen)

    def reaches(
        self, src: int, dst: int, blocked: Iterable[int] = ()
    ) -> bool:
        """True if ``dst`` is reachable from ``src`` avoiding ``blocked``.

        ``src`` itself is never blocked; a path of length zero (``src ==
        dst``) counts.
        """
        blocked_set = frozenset(blocked)
        seen = set()
        work = [src]
        while work:
            index = work.pop()
            if index == dst:
                return True
            if index in seen or (index in blocked_set and index != src):
                continue
            seen.add(index)
            work.extend(s for s in self.succs[index] if s not in seen)
        return False

    def dominators(self, entry: int = 0) -> List[FrozenSet[int]]:
        """Per-instruction dominator sets (classic iterative algorithm).

        Unreachable instructions report the full set (vacuous
        domination), as is conventional.
        """
        n = len(self.instructions)
        everything = frozenset(range(n))
        dom: List[FrozenSet[int]] = [everything] * n
        dom[entry] = frozenset({entry})
        order = sorted(self.reachable(entry) - {entry})
        changed = True
        while changed:
            changed = False
            for index in order:
                pred_doms = [dom[p] for p in self.preds[index]]
                if pred_doms:
                    new = frozenset.intersection(*pred_doms) | {index}
                else:
                    new = frozenset({index})
                if new != dom[index]:
                    dom[index] = new
                    changed = True
        return dom

    def dominates(self, a: int, b: int, entry: int = 0) -> bool:
        """True if ``a`` dominates ``b`` (every entry path to b hits a)."""
        return a in self.dominators(entry)[b]


class Direction(enum.Enum):
    FORWARD = "forward"
    BACKWARD = "backward"


class DataflowProblem(Generic[T]):
    """One dataflow problem: lattice values plus transfer/meet.

    Subclasses define:

    * ``direction`` — :data:`Direction.FORWARD` or ``BACKWARD``;
    * ``boundary()`` — the value at the entry (forward) or exit
      (backward) of the graph;
    * ``initial()`` — the optimistic starting value for interior
      points (the lattice top);
    * ``transfer(index, inst, value)`` — the per-instruction transfer
      function;
    * ``meet(a, b)`` — the confluence operator.
    """

    direction: Direction = Direction.FORWARD

    def boundary(self) -> T:
        raise NotImplementedError

    def initial(self) -> T:
        raise NotImplementedError

    def transfer(self, index: int, inst: Instruction, value: T) -> T:
        raise NotImplementedError

    def meet(self, a: T, b: T) -> T:
        raise NotImplementedError


@dataclass
class DataflowResult(Generic[T]):
    """Fixpoint solution: a value at the entry and exit of each index.

    For a forward problem ``in_values[i]`` is the state before ``i``
    executes and ``out_values[i]`` after; for a backward problem
    ``in_values[i]`` is the state *after* ``i`` in program order (the
    analysis' input) and ``out_values[i]`` before it.
    """

    in_values: List[T]
    out_values: List[T]


def solve(
    cfg: ControlFlowGraph, problem: DataflowProblem[T]
) -> DataflowResult[T]:
    """Worklist fixpoint of ``problem`` over ``cfg``.

    Straight-line chains converge in a single linear pass; cyclic
    graphs iterate to a fixpoint.  Unreachable instructions keep the
    optimistic ``initial()`` value.
    """
    n = len(cfg)
    forward = problem.direction is Direction.FORWARD
    edges_in = cfg.preds if forward else cfg.succs
    edges_out = cfg.succs if forward else cfg.preds
    boundary_nodes = {0} if forward else set(
        index for index in range(n) if not cfg.succs[index]
    )
    # A backward problem over a graph with no natural exits (e.g. an
    # infinite loop) still needs a seed.
    if not boundary_nodes:
        boundary_nodes = {n - 1}

    in_values: List[T] = [problem.initial() for _ in range(n)]
    out_values: List[T] = [problem.initial() for _ in range(n)]
    # Every node is seeded (not just the boundary): a node whose first
    # computed value happens to equal the optimistic initial value
    # would otherwise never enqueue its neighbours.  Processing in
    # program order (reverse for backward problems) converges in one
    # pass on straight-line code.
    work = list(range(n)) if forward else list(range(n - 1, -1, -1))
    pending = set(work)
    first_visit = [True] * n
    while work:
        index = work.pop(0)
        pending.discard(index)
        value: Optional[T] = None
        for other in edges_in[index]:
            contribution = out_values[other]
            value = (
                contribution
                if value is None
                else problem.meet(value, contribution)
            )
        if index in boundary_nodes:
            boundary = problem.boundary()
            value = boundary if value is None else problem.meet(value, boundary)
        if value is None:
            value = problem.initial()
        in_values[index] = value
        new_out = problem.transfer(index, cfg.instructions[index], value)
        if new_out != out_values[index] or first_visit[index]:
            out_values[index] = new_out
            for other in edges_out[index]:
                if other not in pending:
                    pending.add(other)
                    work.append(other)
        first_visit[index] = False
    return DataflowResult(in_values=in_values, out_values=out_values)


# -- reaching definitions -----------------------------------------------

#: Reaching-definitions state: register -> definition sites (indices,
#: with :data:`ENTRY_DEF` for the initial register file).
RegDefs = Tuple[Tuple[int, FrozenSet[int]], ...]


def _defs_to_dict(state: RegDefs) -> Dict[int, FrozenSet[int]]:
    return dict(state)


class ReachingDefinitions(DataflowProblem[RegDefs]):
    """Which definition sites can produce each register's value."""

    direction = Direction.FORWARD

    def boundary(self) -> RegDefs:
        return tuple(
            (reg, frozenset({ENTRY_DEF})) for reg in range(NUM_REGS)
        )

    def initial(self) -> RegDefs:
        return ()

    def transfer(
        self, index: int, inst: Instruction, value: RegDefs
    ) -> RegDefs:
        dest = inst.dest()
        if dest is None or dest == 0:
            return value
        state = _defs_to_dict(value)
        state[dest] = frozenset({index})
        return tuple(sorted(state.items()))

    def meet(self, a: RegDefs, b: RegDefs) -> RegDefs:
        state = _defs_to_dict(a)
        for reg, defs in b:
            state[reg] = state.get(reg, frozenset()) | defs
        return tuple(sorted(state.items()))


def reaching_definitions(
    cfg: ControlFlowGraph,
) -> List[Dict[int, FrozenSet[int]]]:
    """Per instruction: register -> reaching definition sites."""
    result = solve(cfg, ReachingDefinitions())
    return [_defs_to_dict(value) for value in result.in_values]


def def_use_chains(cfg: ControlFlowGraph) -> List[Dict[int, FrozenSet[int]]]:
    """Per instruction: source register -> its possible producers.

    Producers are instruction indices, or :data:`ENTRY_DEF` when the
    initial register file (value 0) can reach the use.  Register 0 is
    the hardwired zero and is never listed.
    """
    reaching = reaching_definitions(cfg)
    chains: List[Dict[int, FrozenSet[int]]] = []
    for index, inst in enumerate(cfg.instructions):
        uses: Dict[int, FrozenSet[int]] = {}
        for src in inst.sources():
            if src is None or src == 0:
                continue
            uses[src] = reaching[index].get(src, frozenset())
        chains.append(uses)
    return chains


# -- live variables -----------------------------------------------------

Live = FrozenSet[int]


class LiveVariables(DataflowProblem[Live]):
    """Registers whose values may still be read downstream."""

    direction = Direction.BACKWARD

    def boundary(self) -> Live:
        return frozenset()

    def initial(self) -> Live:
        return frozenset()

    def transfer(self, index: int, inst: Instruction, value: Live) -> Live:
        live = set(value)
        dest = inst.dest()
        if dest is not None and dest != 0:
            live.discard(dest)
        for src in inst.sources():
            if src is not None and src != 0:
                live.add(src)
        return frozenset(live)

    def meet(self, a: Live, b: Live) -> Live:
        return a | b


def live_variables(cfg: ControlFlowGraph) -> List[FrozenSet[int]]:
    """Per instruction: registers live *before* the instruction."""
    result = solve(cfg, LiveVariables())
    return result.out_values


# -- constant propagation ----------------------------------------------

#: Constant state: register -> known constant.  A register absent from
#: the mapping is non-constant.  The whole-state value ``None`` is the
#: optimistic "unreached" top.
Consts = Optional[Tuple[Tuple[int, int], ...]]


class ConstantPropagation(DataflowProblem[Consts]):
    """Registers holding statically-known constants.

    The entry state knows every register: the register file starts
    zeroed.  Loads and jump-and-link results are non-constant.
    """

    direction = Direction.FORWARD

    def boundary(self) -> Consts:
        return tuple((reg, 0) for reg in range(NUM_REGS))

    def initial(self) -> Consts:
        return None

    def transfer(
        self, index: int, inst: Instruction, value: Consts
    ) -> Consts:
        if value is None:
            return None
        state = dict(value)
        dest = inst.dest()
        if dest is None or dest == 0:
            return value
        info = inst.info
        result: Optional[int] = None
        if info.alu is not None:
            a = 0 if inst.rs1 in (None, 0) else state.get(inst.rs1)
            if inst.rs2 is not None:
                b: Optional[int] = (
                    0 if inst.rs2 == 0 else state.get(inst.rs2)
                )
            else:
                b = inst.imm
            if a is not None and b is not None:
                result = info.alu(a, b)
        if result is None:
            state.pop(dest, None)
        else:
            state[dest] = result
        return tuple(sorted(state.items()))

    def meet(self, a: Consts, b: Consts) -> Consts:
        if a is None:
            return b
        if b is None:
            return a
        other = dict(b)
        merged = tuple(
            (reg, const)
            for reg, const in a
            if other.get(reg) == const
        )
        return merged


def constant_registers(
    cfg: ControlFlowGraph,
) -> List[Optional[Dict[int, int]]]:
    """Per instruction: known-constant registers before it executes.

    ``None`` marks instructions the analysis never reached.
    """
    result = solve(cfg, ConstantPropagation())
    values: List[Optional[Dict[int, int]]] = []
    reachable = cfg.reachable()
    for index, value in enumerate(result.in_values):
        if value is None or index not in reachable:
            values.append(None)
        else:
            values.append(dict(value))
    return values
