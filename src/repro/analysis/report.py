"""Diagnostic records shared by the p-thread verifier and program linter.

A :class:`Diagnostic` is one finding with a stable code (``PT001`` ...
``PT006`` for p-thread invariants, ``PL001`` ... ``PL005`` for
workload-level lints, ``SL001`` for dynamic-slice structure), a
severity, a message, and whatever location information applies: a
source-program PC, a p-thread body position, or an assembly source
line/column.

The module also owns the debug-mode verification switch: when the
``REPRO_VERIFY`` environment variable is truthy, the slicer, optimizer,
merger, and selector run a verification post-pass after every
transformation and raise :class:`VerificationError` on any
error-severity finding.
"""

from __future__ import annotations

import enum
import json
import os
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence


class Severity(enum.IntEnum):
    """Diagnostic severity, ordered so comparisons read naturally."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Diagnostic:
    """One verifier/linter finding.

    Attributes:
        code: stable diagnostic code (``PT001``, ``PL003``, ...).
        severity: :class:`Severity` of the finding.
        message: human-readable description.
        pc: source-program PC the finding refers to, if any.
        position: p-thread body position, if any.
        line / column: assembly source location (1-based), if any.
    """

    code: str
    severity: Severity
    message: str
    pc: Optional[int] = None
    position: Optional[int] = None
    line: Optional[int] = None
    column: Optional[int] = None

    def location(self) -> str:
        """Render whichever location fields are set (may be empty)."""
        parts = []
        if self.line is not None:
            loc = f"line {self.line}"
            if self.column is not None:
                loc += f":{self.column}"
            parts.append(loc)
        if self.pc is not None:
            parts.append(f"pc#{self.pc:04d}")
        if self.position is not None:
            parts.append(f"body[{self.position}]")
        return " ".join(parts)

    def render(self) -> str:
        location = self.location()
        where = f" at {location}" if location else ""
        return f"{self.severity} {self.code}{where}: {self.message}"

    def to_dict(self) -> dict:
        """JSON-ready representation (used by ``repro lint --format json``)."""
        payload = {
            "code": self.code,
            "severity": str(self.severity),
            "message": self.message,
        }
        for key in ("pc", "position", "line", "column"):
            value = getattr(self, key)
            if value is not None:
                payload[key] = value
        return payload


def errors(diagnostics: Iterable[Diagnostic]) -> List[Diagnostic]:
    """Only the error-severity findings."""
    return [d for d in diagnostics if d.severity is Severity.ERROR]


def max_severity(diagnostics: Iterable[Diagnostic]) -> Optional[Severity]:
    """Highest severity present, or ``None`` for a clean report."""
    return max((d.severity for d in diagnostics), default=None)


def sort_diagnostics(
    diagnostics: Iterable[Diagnostic],
) -> List[Diagnostic]:
    """Deterministic presentation order: (code, location, message).

    Every reporting surface (``repro lint``, the p-thread verifier,
    the translation validator) sorts through here so CI diffs and
    corpus reproducers are byte-stable regardless of discovery order.
    """
    return sorted(
        diagnostics,
        key=lambda d: (
            d.code,
            d.pc if d.pc is not None else -1,
            d.position if d.position is not None else -1,
            d.line if d.line is not None else -1,
            d.column if d.column is not None else -1,
            d.message,
        ),
    )


def render_text(
    diagnostics: Sequence[Diagnostic], title: Optional[str] = None
) -> str:
    """Multi-line text report (one finding per line)."""
    lines: List[str] = []
    if title is not None:
        lines.append(title)
    if not diagnostics:
        lines.append("  clean (no diagnostics)")
    lines.extend("  " + d.render() for d in diagnostics)
    return "\n".join(lines)


def render_json(diagnostics: Sequence[Diagnostic], **extra: object) -> str:
    """JSON report: ``extra`` keys ride along next to the findings."""
    payload = dict(extra)
    payload["diagnostics"] = [d.to_dict() for d in diagnostics]
    return json.dumps(payload, indent=2, sort_keys=True)


#: Environment variable enabling transformation post-pass verification.
VERIFY_ENV = "REPRO_VERIFY"

_TRUTHY = {"1", "true", "yes", "on"}


def verification_enabled() -> bool:
    """True when ``REPRO_VERIFY`` asks for debug-mode verification."""
    return os.environ.get(VERIFY_ENV, "").strip().lower() in _TRUTHY


class VerificationError(AssertionError):
    """An invariant the pipeline must preserve was violated.

    Subclasses ``AssertionError`` because verification is a debug-mode
    assertion: production runs (without ``REPRO_VERIFY``) never raise.
    """

    def __init__(self, context: str, diagnostics: Sequence[Diagnostic]) -> None:
        self.context = context
        self.diagnostics = list(diagnostics)
        super().__init__(render_text(self.diagnostics, title=context))


def assert_clean(diagnostics: Sequence[Diagnostic], context: str) -> None:
    """Raise :class:`VerificationError` on any error-severity finding.

    Warnings and notes pass: transformations on unoptimized bodies
    legitimately leave dead computation or unconsumed stores behind,
    and those are reported — not fatal — findings.
    """
    fatal = errors(diagnostics)
    if fatal:
        raise VerificationError(context, fatal)
