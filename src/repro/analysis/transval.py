"""Translation validation for the compiled basic-block engine.

The specializing compiler in :mod:`repro.engine.compiler` turns every
basic block of a :class:`~repro.engine.decode.DecodedProgram` into
generated Python source.  The differential suite and the fuzz oracle
check that generated code *dynamically* — on the inputs we happen to
run.  This module checks it *statically*, in the translation-validation
tradition: instead of proving the code generator correct once, every
emitted artifact is validated against an independently derived
reference, so a codegen bug is caught for all inputs at compile time.

How a block is validated
------------------------

1.  The generated ``_b<start>`` function is parsed with :mod:`ast` and
    abstractly interpreted over a symbolic machine state.  The result
    is an *effect summary*: final symbolic values for every register
    file slot written, an ordered list of side effects per effect
    stream (memory, hierarchy, trace, store queue, retire ring,
    predictor, ...), and the symbolic successor PC expression.
2.  A *reference* for the same block is derived straight from the
    ``DecodedProgram`` arrays (opcode, register indices, immediates,
    branch targets, latencies): naive straight-line source mirroring
    the interpreter's per-kind statements, with each opcode application
    left as an opaque marker ``__op_<pc>(a, b)`` / ``__br_<pc>(a, b)``.
    The reference runs through the *same* symbolic extractor.
3.  The two summaries are compared.  Expressions are equivalent when
    they are structurally identical or agree on a battery of
    deterministic concrete vectors; marker applications evaluate
    through ``decoded.alu[pc]`` / ``decoded.branch[pc]`` — the
    interpreter's real opcode lambdas — so the compiler's inline
    arithmetic templates are checked against the ISA semantics they
    claim to reproduce, not against themselves.

Diagnostic codes
----------------

=======  ==============================================================
Code     Meaning
=======  ==============================================================
CG001    register dataflow mismatch (architectural register finals)
CG002    memory effect mismatch (order, address, or value of loads,
         stores, hierarchy or store-queue operations)
CG003    control-transfer mismatch (successor PC, block partition, or
         dispatch table)
CG004    latency / trace side-effect mismatch (ready times, timing
         scalars, trace records, retire ring, counters, predictor or
         launch interactions)
CG005    unvalidatable construct — the extractor refused a statement
         or expression shape it cannot model.  Always explicit, never
         silently skipped.
CG101    advisory: the program fell back to the interpreter, with the
         reason (no generated code to validate)
=======  ==============================================================

Intentional compiled/interpreter divergences (the compiled engine's
documented contract) are encoded in the reference generator rather
than suppressed in the comparator: with tracing off the compiled
functional engine skips last-writer bookkeeping entirely; launch
checks happen only at schedule trigger PCs; aligned memory traffic
bypasses the access methods and touches the backing word dict
directly.
"""

from __future__ import annotations

import ast
import contextlib
import hashlib
import sys
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.analysis.report import Diagnostic, Severity, sort_diagnostics
from repro.engine.compiler import (
    MAX_PROGRAM,
    _ALIGN_MASK,
    _ALU_TEMPLATES,
    _BRANCH_OPS,
    CompiledBlocks,
    discover_blocks,
)
from repro.engine.decode import (
    DecodedProgram,
    K_ALU_I,
    K_ALU_R,
    K_BRANCH,
    K_HALT,
    K_JAL,
    K_JR,
    K_JUMP,
    K_LOAD,
    K_NOP,
    K_STORE,
)
from repro.obs import get_registry, get_tracer

#: Stable diagnostic codes and their one-line meanings.
CG_CODES: Dict[str, str] = {
    "CG001": "register dataflow mismatch",
    "CG002": "memory effect mismatch",
    "CG003": "control-transfer mismatch",
    "CG004": "latency/trace side-effect mismatch",
    "CG005": "unvalidatable construct",
    "CG101": "compilation fell back to the interpreter",
}

#: Effect streams whose mismatches are memory-ordering bugs (CG002);
#: every other stream reports as a side-effect mismatch (CG004).
_MEMORY_STREAMS = frozenset(("mem", "hier", "sq"))

#: Effectful context calls -> effect stream.
_EFFECT_CALLS: Dict[str, str] = {
    "mem_load": "mem",
    "mem_store": "mem",
    "hier_access": "hier",
    "mt": "hier",
    "pt": "hier",
    "observe": "hier",
    "tb_a": "trace",
    "predict": "predict",
    "predict_ind": "predict",
    "launch": "launch",
    ".pop": "hints",
}

#: Pure context calls: the value is an opaque function of (name,
#: per-name call ordinal, argument values).
_PURE_CALLS = frozenset(
    (
        "words_get",
        "ls_get",
        "sq_get",
        "bc_get",
        "bh_get",
        "sget",
        "mexp.get",
        "trig.get",
    )
)

#: Calls whose result may be ``None`` (drives is/is-not-None branches).
_NULLABLE_CALLS = frozenset(
    ("sq_get", "bh_get", "mexp.get", "trig.get", ".pop")
)

#: Context container names -> effect stream for subscript mutation.
_CTX_STREAMS: Dict[str, str] = {
    "words": "mem",
    "last_store": "last_store",
    "sq": "sq",
    "ring": "ring",
    "mexp": "mexp",
    "bc": "hints",
    "llc": "stats",
    "tallies": "stats",
}

#: Register-file parameter name -> symbolic leaf tag.
_REGFILES = {"regs": "r", "lw": "w", "rdy": "d"}

_BIN_OPS = {
    ast.Add: "+",
    ast.Sub: "-",
    ast.Mult: "*",
    ast.BitAnd: "&",
    ast.BitOr: "|",
    ast.BitXor: "^",
    ast.LShift: "<<",
    ast.RShift: ">>",
    ast.Mod: "%",
}

_CMP_OPS = {
    ast.Eq: "==",
    ast.NotEq: "!=",
    ast.Lt: "<",
    ast.LtE: "<=",
    ast.Gt: ">",
    ast.GtE: ">=",
}


class UnvalidatableConstruct(Exception):
    """The symbolic extractor met a construct it cannot model (CG005)."""

    def __init__(self, detail: str) -> None:
        self.detail = detail
        super().__init__(detail)


class _EvalError(Exception):
    """Concrete evaluation of a symbolic expression failed."""


#: Expression tags that carry no nested sub-expressions.
_LEAF_TAGS = frozenset(
    ("const", "r", "w", "d", "var", "undef", "memval", "traceidx",
     "loopvar", "ctx")
)

#: Every expression tag the extractor emits (used to tell expression
#: nodes apart from bare argument tuples during congruent comparison).
_EXPR_TAGS = _LEAF_TAGS | frozenset(
    ("ctxsub", "sub", "while", "pcall", "ecall", "builtin", "maxmin",
     "opapply", "brapply", "bin", "cmp", "isnone", "notnone", "in",
     "not", "neg", "and", "or", "ite", "tuple", "list")
)


def _is_leaf(expr: Any) -> bool:
    return isinstance(expr, tuple) and len(expr) == 2 and expr[0] in _LEAF_TAGS


def _is_expr(node: Any) -> bool:
    return (
        isinstance(node, tuple)
        and bool(node)
        and isinstance(node[0], str)
        and node[0] in _EXPR_TAGS
    )


# ----------------------------------------------------------------------
# Symbolic extraction
# ----------------------------------------------------------------------

Expr = Tuple[Any, ...]
Guard = Tuple[Any, ...]
Effect = Tuple[str, Guard, Tuple[Any, ...]]


@dataclass
class _Summary:
    """Effect summary of one block function."""

    effects: List[Effect]
    env: Dict[Any, Expr]
    ret: Optional[Expr]


def _fold_const(node: ast.expr) -> Optional[Expr]:
    """Fold ``Constant`` and ``-Constant`` into a const expression."""
    if isinstance(node, ast.Constant) and isinstance(
        node.value, (int, bool, type(None))
    ):
        return ("const", node.value)
    if (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, ast.USub)
        and isinstance(node.operand, ast.Constant)
        and isinstance(node.operand.value, int)
    ):
        return ("const", -node.operand.value)
    return None


class _Extractor:
    """Abstractly interpret one block function into a :class:`_Summary`.

    The symbolic state maps register-file slots ``("r"|"w"|"d", i)``
    and local variable names to expression trees.  Branches are merged
    at the join with if-then-else nodes; side effects are recorded in
    program order with the guard (path condition) under which they
    fire.  Anything outside the grammar the two code generators emit
    raises :class:`UnvalidatableConstruct` — explicit, never silent.
    """

    def __init__(self, decoded: DecodedProgram) -> None:
        self.decoded = decoded
        self.effects: List[Effect] = []
        self._ordinals: Dict[str, int] = {}
        self._trace_count = 0
        self._memload_count = 0
        self._loop_count = 0

    # -- entry ----------------------------------------------------------

    def run(self, fn: ast.FunctionDef) -> _Summary:
        env: Dict[Any, Expr] = {}
        for arg in fn.args.args:
            if arg.arg not in _REGFILES:
                env[arg.arg] = ("var", arg.arg)
        ret = self._body(fn.body, env, ())
        return _Summary(self.effects, env, ret)

    # -- helpers --------------------------------------------------------

    def _ordinal(self, name: str) -> int:
        count = self._ordinals.get(name, 0)
        self._ordinals[name] = count + 1
        return count

    def _emit(self, stream: str, guard: Guard, payload: Tuple) -> None:
        self.effects.append((stream, guard, payload))

    def _reg_read(self, env: Dict, tag: str, index: int) -> Expr:
        return env.get((tag, index), (tag, index))

    # -- statement walking ---------------------------------------------

    def _body(
        self, stmts: Sequence[ast.stmt], env: Dict, guard: Guard
    ) -> Optional[Expr]:
        """Execute a top-level function body; returns the return expr."""
        ret: Optional[Expr] = None
        i = 0
        while i < len(stmts):
            st = stmts[i]
            if isinstance(st, ast.Return):
                if i != len(stmts) - 1:
                    raise UnvalidatableConstruct(
                        "return before the end of the block body"
                    )
                if st.value is None:
                    raise UnvalidatableConstruct("bare return")
                ret = self._expr(st.value, env, guard)
                return ret
            i += self._step(stmts, i, env, guard)
        return ret

    def _exec(
        self, stmts: Sequence[ast.stmt], env: Dict, guard: Guard
    ) -> None:
        """Execute a nested statement list (no return allowed)."""
        i = 0
        while i < len(stmts):
            if isinstance(stmts[i], ast.Return):
                raise UnvalidatableConstruct("return inside nested block")
            i += self._step(stmts, i, env, guard)

    def _step(
        self, stmts: Sequence[ast.stmt], i: int, env: Dict, guard: Guard
    ) -> int:
        """Execute statement ``i``; returns how many statements consumed."""
        st = stmts[i]
        if isinstance(st, ast.If):
            consumed = self._try_aligned_load(stmts, i, env, guard)
            if consumed:
                return consumed
            consumed = self._try_aligned_store(stmts, i, env, guard)
            if consumed:
                return consumed
            self._if(st, env, guard)
            return 1
        if isinstance(st, ast.Assign):
            self._assign(st, env, guard)
            return 1
        if isinstance(st, ast.AugAssign):
            self._augassign(st, env, guard)
            return 1
        if isinstance(st, ast.Expr):
            if isinstance(st.value, ast.Constant):
                return 1  # docstring
            if not isinstance(st.value, ast.Call):
                raise UnvalidatableConstruct(
                    f"expression statement {ast.dump(st.value)[:80]}"
                )
            self._expr(st.value, env, guard)
            return 1
        if isinstance(st, ast.While):
            self._while(st, env, guard)
            return 1
        if isinstance(st, ast.For):
            self._for(st, env, guard)
            return 1
        if isinstance(st, ast.Delete):
            self._delete(st, env, guard)
            return 1
        if isinstance(st, ast.Pass):
            return 1
        raise UnvalidatableConstruct(
            f"statement {type(st).__name__} is outside the codegen grammar"
        )

    # -- aligned memory fast-path normalization ------------------------

    def _match_align_guard(
        self, node: ast.If
    ) -> Optional[Tuple[str, ast.Call]]:
        """Match ``if <name> & ALIGN_MASK: <single call>`` -> (name, call)."""
        if _ALIGN_MASK is None or node.orelse:
            return None
        test = node.test
        if not (
            isinstance(test, ast.BinOp)
            and isinstance(test.op, ast.BitAnd)
            and isinstance(test.left, ast.Name)
            and isinstance(test.right, ast.Constant)
            and test.right.value == _ALIGN_MASK
        ):
            return None
        if len(node.body) != 1 or not isinstance(node.body[0], ast.Expr):
            return None
        call = node.body[0].value
        if not (isinstance(call, ast.Call) and isinstance(call.func, ast.Name)):
            return None
        return test.left.id, call

    def _try_aligned_load(
        self, stmts: Sequence[ast.stmt], i: int, env: Dict, guard: Guard
    ) -> int:
        """``if a & 3: mem_load(a)`` [+ ``v = words_get(a, 0)``].

        The compiled engine skips the memory access method for aligned
        addresses and reads the backing word dict directly; the pair is
        one architectural load.
        """
        match = self._match_align_guard(stmts[i])  # type: ignore[arg-type]
        if match is None:
            return 0
        addr_name, call = match
        if call.func.id != "mem_load":  # type: ignore[union-attr]
            return 0
        if not (
            len(call.args) == 1
            and isinstance(call.args[0], ast.Name)
            and call.args[0].id == addr_name
        ):
            raise UnvalidatableConstruct(
                "guarded mem_load does not reuse the guard address"
            )
        addr = self._expr_name(addr_name, env)
        self._emit("mem", guard, ("call", "mem_load", (addr,)))
        self._memload_count += 1
        value: Expr = ("memval", self._memload_count)
        nxt = stmts[i + 1] if i + 1 < len(stmts) else None
        if (
            isinstance(nxt, ast.Assign)
            and len(nxt.targets) == 1
            and isinstance(nxt.targets[0], ast.Name)
            and isinstance(nxt.value, ast.Call)
            and isinstance(nxt.value.func, ast.Name)
            and nxt.value.func.id == "words_get"
            and len(nxt.value.args) == 2
            and isinstance(nxt.value.args[0], ast.Name)
            and nxt.value.args[0].id == addr_name
        ):
            env[nxt.targets[0].id] = value
            return 2
        return 1

    def _try_aligned_store(
        self, stmts: Sequence[ast.stmt], i: int, env: Dict, guard: Guard
    ) -> int:
        """``if a & 3: mem_store(a, V)`` + ``words[a] = V`` == one store.

        When the unconditional word-dict write is missing or disagrees
        with the guarded method call, the pair is *not* an aligned
        store: a distinct payload is recorded so the comparison against
        the reference's single store fails with CG002.
        """
        match = self._match_align_guard(stmts[i])  # type: ignore[arg-type]
        if match is None:
            return 0
        addr_name, call = match
        if call.func.id != "mem_store":  # type: ignore[union-attr]
            return 0
        if not (
            len(call.args) == 2
            and isinstance(call.args[0], ast.Name)
            and call.args[0].id == addr_name
        ):
            raise UnvalidatableConstruct(
                "guarded mem_store does not reuse the guard address"
            )
        addr = self._expr_name(addr_name, env)
        value = self._expr(call.args[1], env, guard)
        nxt = stmts[i + 1] if i + 1 < len(stmts) else None
        if (
            isinstance(nxt, ast.Assign)
            and len(nxt.targets) == 1
            and isinstance(nxt.targets[0], ast.Subscript)
            and isinstance(nxt.targets[0].value, ast.Name)
            and nxt.targets[0].value.id == "words"
            and isinstance(nxt.targets[0].slice, ast.Name)
            and nxt.targets[0].slice.id == addr_name
        ):
            word_value = self._expr(nxt.value, env, guard)
            if word_value is value or (
                _is_leaf(word_value) and word_value == value
            ):
                self._emit("mem", guard, ("call", "mem_store", (addr, value)))
                return 2
            self._emit("mem", guard, ("call", "mem_store", (addr, value)))
            self._emit(
                "mem", guard, ("setitem", "words", (addr, word_value))
            )
            return 2
        # Guarded (misaligned-only) store with no aligned word write.
        self._emit(
            "mem", guard, ("call", "mem_store_misaligned_only", (addr, value))
        )
        return 1

    # -- individual statements -----------------------------------------

    def _assign(self, st: ast.Assign, env: Dict, guard: Guard) -> None:
        if len(st.targets) != 1:
            raise UnvalidatableConstruct("chained assignment")
        target = st.targets[0]
        value = self._expr(st.value, env, guard)
        if isinstance(target, ast.Name):
            env[target.id] = value
            return
        if isinstance(target, ast.Tuple):
            for j, elt in enumerate(target.elts):
                if not isinstance(elt, ast.Name):
                    raise UnvalidatableConstruct("non-name unpack target")
                env[elt.id] = ("sub", value, ("const", j))
            return
        if isinstance(target, ast.Subscript):
            self._subscript_write(
                target, value, env, guard, op="setitem"
            )
            return
        raise UnvalidatableConstruct(
            f"assignment target {type(target).__name__}"
        )

    def _augassign(self, st: ast.AugAssign, env: Dict, guard: Guard) -> None:
        if not isinstance(st.op, ast.Add):
            raise UnvalidatableConstruct(
                f"augmented assignment with {type(st.op).__name__}"
            )
        value = self._expr(st.value, env, guard)
        target = st.target
        if isinstance(target, ast.Name):
            old = env.get(target.id)
            if old is None:
                raise UnvalidatableConstruct(
                    f"augmented assignment to unbound {target.id!r}"
                )
            env[target.id] = ("bin", "+", old, value)
            return
        if isinstance(target, ast.Subscript):
            self._subscript_write(target, value, env, guard, op="augitem")
            return
        raise UnvalidatableConstruct(
            f"augmented target {type(target).__name__}"
        )

    def _subscript_write(
        self,
        target: ast.Subscript,
        value: Expr,
        env: Dict,
        guard: Guard,
        op: str,
    ) -> None:
        base = target.value
        if not isinstance(base, ast.Name):
            raise UnvalidatableConstruct("subscript store on non-name base")
        name = base.id
        if name in _REGFILES:
            if op != "setitem":
                raise UnvalidatableConstruct(
                    f"augmented store into register file {name!r}"
                )
            index = _fold_const(target.slice)
            if index is None or not isinstance(index[1], int):
                raise UnvalidatableConstruct(
                    f"non-constant {name}[] index"
                )
            env[(_REGFILES[name], index[1])] = value
            return
        index_val = self._expr(target.slice, env, guard)
        if name in _CTX_STREAMS:
            self._emit(
                _CTX_STREAMS[name], guard, (op, name, (index_val, value))
            )
            return
        base_val = env.get(name)
        if base_val is None:
            raise UnvalidatableConstruct(
                f"subscript store on unbound name {name!r}"
            )
        self._emit("obj", guard, (op, None, (base_val, index_val, value)))

    def _if(self, st: ast.If, env: Dict, guard: Guard) -> None:
        test = self._expr(st.test, env, guard)
        env_true = dict(env)
        env_false = dict(env)
        self._exec(st.body, env_true, guard + ((test, True),))
        self._exec(st.orelse, env_false, guard + ((test, False),))
        for key in set(env_true) | set(env_false):
            tval = env_true.get(key, self._initial(key))
            fval = env_false.get(key, self._initial(key))
            # Identity, not structural, comparison: expression trees
            # are DAGs and deep equality is exponential.  A branch
            # that rebuilds an identical value just gets a redundant
            # (harmless, both-sides-symmetric) if-then-else node;
            # leaves are still compared by value so fresh-but-equal
            # leaf tuples don't accumulate noise.
            changed = tval is not fval
            if changed and _is_leaf(tval) and _is_leaf(fval):
                changed = tval != fval
            if changed:
                env[key] = ("ite", test, tval, fval)
            elif key not in env:
                env[key] = tval

    @staticmethod
    def _initial(key: Any) -> Expr:
        if isinstance(key, tuple):
            return key  # register-file leaf
        return ("undef", key)

    def _while(self, st: ast.While, env: Dict, guard: Guard) -> None:
        """Unbounded loops are summarized as an opaque fixpoint.

        The only loop either code generator emits is the fetch-slot
        stealing prologue; the compiled and reference texts are
        token-identical, so a digest of the loop AST plus the symbolic
        entry values of its free variables identifies the fixpoint.
        Any effectful call inside would escape the summary, so those
        are rejected outright.
        """
        if guard or st.orelse:
            raise UnvalidatableConstruct("guarded or else-carrying while")
        for node in ast.walk(st):
            if isinstance(node, ast.Call):
                if not (
                    isinstance(node.func, ast.Name)
                    and node.func.id in _PURE_CALLS
                ):
                    raise UnvalidatableConstruct(
                        "effectful call inside while loop"
                    )
            elif isinstance(node, (ast.Subscript, ast.Delete)) and isinstance(
                getattr(node, "ctx", None), (ast.Store, ast.Del)
            ):
                raise UnvalidatableConstruct("subscript store in while loop")
        digest = hashlib.blake2b(
            ast.dump(st).encode(), digest_size=8
        ).hexdigest()
        assigned = sorted(
            {
                t.id
                for node in ast.walk(st)
                for t in (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                    if isinstance(node, ast.AugAssign)
                    else []
                )
                if isinstance(t, ast.Name)
            }
        )
        free = sorted(
            {
                node.id
                for node in ast.walk(st)
                if isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id in env
            }
        )
        inputs = tuple((name, env[name]) for name in free)
        for name in assigned:
            env[name] = ("while", digest, name, inputs)

    def _for(self, st: ast.For, env: Dict, guard: Guard) -> None:
        if st.orelse or not isinstance(st.target, ast.Name):
            raise UnvalidatableConstruct("for loop outside codegen grammar")
        for node in st.body:
            for sub in ast.walk(node):
                if isinstance(sub, (ast.Assign, ast.AugAssign)):
                    raise UnvalidatableConstruct(
                        "assignment inside for loop body"
                    )
        iter_val = self._expr(st.iter, env, guard)
        self._loop_count += 1
        body_env = dict(env)
        body_env[st.target.id] = ("loopvar", self._loop_count)
        self._exec(st.body, body_env, guard + (("loop", iter_val),))

    def _delete(self, st: ast.Delete, env: Dict, guard: Guard) -> None:
        for target in st.targets:
            if not (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Name)
                and target.value.id in _CTX_STREAMS
            ):
                raise UnvalidatableConstruct("delete outside codegen grammar")
            name = target.value.id
            index_val = self._expr(target.slice, env, guard)
            self._emit(
                _CTX_STREAMS[name], guard, ("delitem", name, (index_val,))
            )

    # -- expressions ----------------------------------------------------

    def _expr_name(self, name: str, env: Dict) -> Expr:
        value = env.get(name)
        if value is not None:
            return value
        if name in _CTX_STREAMS or name == "trig":
            return ("ctx", name)
        raise UnvalidatableConstruct(f"read of unbound name {name!r}")

    def _expr(self, node: ast.expr, env: Dict, guard: Guard) -> Expr:
        const = _fold_const(node)
        if const is not None:
            return const
        if isinstance(node, ast.Name):
            return self._expr_name(node.id, env)
        if isinstance(node, ast.Subscript):
            return self._subscript_read(node, env, guard)
        if isinstance(node, ast.BinOp):
            op = _BIN_OPS.get(type(node.op))
            if op is None:
                raise UnvalidatableConstruct(
                    f"binary operator {type(node.op).__name__}"
                )
            return (
                "bin",
                op,
                self._expr(node.left, env, guard),
                self._expr(node.right, env, guard),
            )
        if isinstance(node, ast.UnaryOp):
            operand = self._expr(node.operand, env, guard)
            if isinstance(node.op, ast.Not):
                return ("not", operand)
            if isinstance(node.op, ast.USub):
                return ("neg", operand)
            raise UnvalidatableConstruct(
                f"unary operator {type(node.op).__name__}"
            )
        if isinstance(node, ast.Compare):
            return self._compare(node, env, guard)
        if isinstance(node, ast.BoolOp):
            op = "and" if isinstance(node.op, ast.And) else "or"
            return (
                op,
                tuple(self._expr(v, env, guard) for v in node.values),
            )
        if isinstance(node, ast.IfExp):
            test = self._expr(node.test, env, guard)
            then = self._expr(node.body, env, guard + ((test, True),))
            other = self._expr(node.orelse, env, guard + ((test, False),))
            return ("ite", test, then, other)
        if isinstance(node, ast.Tuple):
            return (
                "tuple",
                tuple(self._expr(e, env, guard) for e in node.elts),
            )
        if isinstance(node, ast.List):
            return (
                "list",
                tuple(self._expr(e, env, guard) for e in node.elts),
            )
        if isinstance(node, ast.Call):
            return self._call(node, env, guard)
        raise UnvalidatableConstruct(
            f"expression {type(node).__name__} is outside the codegen grammar"
        )

    def _subscript_read(
        self, node: ast.Subscript, env: Dict, guard: Guard
    ) -> Expr:
        base = node.value
        if isinstance(base, ast.Name):
            name = base.id
            if name in _REGFILES:
                index = _fold_const(node.slice)
                if index is None or not isinstance(index[1], int):
                    raise UnvalidatableConstruct(
                        f"non-constant {name}[] index"
                    )
                return self._reg_read(env, _REGFILES[name], index[1])
            index_val = self._expr(node.slice, env, guard)
            if name in _CTX_STREAMS or name == "trig":
                return ("ctxsub", name, index_val)
            local = env.get(name)
            if local is not None:
                return ("sub", local, index_val)
            raise UnvalidatableConstruct(f"subscript of unbound {name!r}")
        base_val = self._expr(base, env, guard)
        index_val = self._expr(node.slice, env, guard)
        return ("sub", base_val, index_val)

    def _compare(self, node: ast.Compare, env: Dict, guard: Guard) -> Expr:
        if len(node.ops) != 1 or len(node.comparators) != 1:
            raise UnvalidatableConstruct("chained comparison")
        op = node.ops[0]
        left = self._expr(node.left, env, guard)
        right_node = node.comparators[0]
        if isinstance(op, (ast.Is, ast.IsNot)):
            if not (
                isinstance(right_node, ast.Constant)
                and right_node.value is None
            ):
                raise UnvalidatableConstruct("is-comparison to non-None")
            tag = "isnone" if isinstance(op, ast.Is) else "notnone"
            return (tag, left)
        right = self._expr(right_node, env, guard)
        if isinstance(op, ast.In):
            return ("in", left, right)
        cmp = _CMP_OPS.get(type(op))
        if cmp is None:
            raise UnvalidatableConstruct(
                f"comparison operator {type(op).__name__}"
            )
        return ("cmp", cmp, left, right)

    def _call(self, node: ast.Call, env: Dict, guard: Guard) -> Expr:
        if node.keywords:
            raise UnvalidatableConstruct("keyword arguments in call")
        func = node.func
        if isinstance(func, ast.Name):
            name = func.id
            args = tuple(self._expr(a, env, guard) for a in node.args)
            if name.startswith("__op_") or name.startswith("__br_"):
                pc = int(name.rsplit("_", 1)[1])
                if len(args) != 2:
                    raise UnvalidatableConstruct(f"{name} arity")
                tag = "opapply" if name.startswith("__op_") else "brapply"
                return (tag, pc, args[0], args[1])
            if name == "tb_len":
                return ("traceidx", self._trace_count)
            if name == "mem_load":
                self._emit("mem", guard, ("call", "mem_load", args))
                self._memload_count += 1
                return ("memval", self._memload_count)
            if name == "tb_a":
                if len(node.args) == 1 and isinstance(node.args[0], ast.Tuple):
                    record = args[0][1]
                else:
                    record = args
                self._emit("trace", guard, ("trace", None, record))
                self._trace_count += 1
                return ("const", None)
            if name == "tb_e":
                # Batched trace flush: one buffer extend carrying a
                # tuple of record tuples.  Each element is one trace
                # effect, so the batched compiled path unifies with
                # the reference's per-record appends stream-for-stream.
                if not (
                    len(node.args) == 1
                    and isinstance(node.args[0], ast.Tuple)
                ):
                    raise UnvalidatableConstruct(
                        "tb_e argument is not a tuple literal"
                    )
                for record in args[0][1]:
                    if not (_is_expr(record) and record[0] == "tuple"):
                        raise UnvalidatableConstruct(
                            "tb_e element is not a record tuple"
                        )
                    self._emit("trace", guard, ("trace", None, record[1]))
                    self._trace_count += 1
                return ("const", None)
            if name in _EFFECT_CALLS:
                ordinal = self._ordinal(name)
                self._emit(_EFFECT_CALLS[name], guard, ("call", name, args))
                return ("ecall", name, ordinal, args)
            if name in _PURE_CALLS:
                return ("pcall", name, self._ordinal(name), args)
            if name in ("len", "next", "iter"):
                return ("builtin", name, args)
            if name in ("max", "min"):
                return ("maxmin", name, args)
            raise UnvalidatableConstruct(f"call to unknown function {name!r}")
        if isinstance(func, ast.Attribute):
            args = tuple(self._expr(a, env, guard) for a in node.args)
            if (
                isinstance(func.value, ast.Name)
                and func.value.id == "mexp"
                and func.attr == "get"
            ):
                return ("pcall", "mexp.get", self._ordinal("mexp.get"), args)
            if (
                isinstance(func.value, ast.Subscript)
                and isinstance(func.value.value, ast.Name)
                and func.value.value.id == "trig"
                and func.attr == "get"
            ):
                return ("pcall", "trig.get", self._ordinal("trig.get"), args)
            if func.attr == "pop" and isinstance(func.value, ast.Name):
                base = self._expr_name(func.value.id, env)
                ordinal = self._ordinal(".pop")
                self._emit("hints", guard, ("call", ".pop", (base,) + args))
                return ("ecall", ".pop", ordinal, (base,) + args)
            raise UnvalidatableConstruct(
                f"method call .{func.attr} is outside the codegen grammar"
            )
        raise UnvalidatableConstruct("indirect call")


# ----------------------------------------------------------------------
# Concrete-vector expression equivalence
# ----------------------------------------------------------------------

_MASK64 = (1 << 64) - 1
_HIGH = 1 << 63

#: Signed corner values cycled through register leaves on vector 1.
_CORNERS = (-1, 0, 1, -(1 << 63), (1 << 63) - 1, 4, -4, 1 << 62)


def _hash_int(*parts: Any) -> int:
    digest = hashlib.blake2b(
        "\x1f".join(repr(p) for p in parts).encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


def _signed_hash(*parts: Any) -> int:
    value = _hash_int(*parts)
    return value - (1 << 64) if value >= _HIGH else value


class _Equiv:
    """Expression equivalence: structural equality, else agreement on a
    battery of deterministic concrete vectors.

    Opcode and branch markers evaluate through the interpreter's real
    lambdas in ``decoded.alu`` / ``decoded.branch``, so the compiler's
    inline templates are checked against the ISA semantics.  Leaf
    domains are chosen per role: architectural registers range over the
    full signed 64-bit space (corner values included), while scheduling
    scalars (``executed``, cycle counters) stay non-negative — which is
    exactly the domain on which the codegen's strength reductions
    (``x % 2**k`` to ``x & (2**k - 1)``) are sound.
    """

    VECTORS = 8

    def __init__(self, decoded: DecodedProgram) -> None:
        self.decoded = decoded
        # Keyed by id(): expression trees share subterms heavily (a
        # DAG), so structural hashing/equality would re-walk shared
        # nodes exponentially often.  The cache entries pin the
        # expression objects so their ids cannot be recycled.
        self._cache: Dict[Tuple[int, int], Tuple[Expr, Any]] = {}
        self._eq_cache: Dict[Tuple[int, int], Tuple[Any, Any, bool]] = {}

    def equal(self, a: Expr, b: Expr) -> bool:
        """Congruence first, concrete vectors as the tie-breaker.

        Same-shaped nodes are compared child by child, so branches of
        an if-then-else are checked directly even when its condition
        happens to evaluate one way on every vector; only where the
        two sides' structure genuinely diverges (``max`` vs chained
        conditionals, ``%`` vs ``&``, template arithmetic vs opcode
        lambda) does the comparison drop down to concrete evaluation.
        """
        if a is b:
            return True
        key = (id(a), id(b))
        hit = self._eq_cache.get(key)
        if hit is not None:
            return hit[2]
        if (
            _is_expr(a)
            and _is_expr(b)
            and a[0] == b[0]
            and len(a) == len(b)
        ):
            if a[0] == "ite" and self._deep_equal(a[1], b[1]):
                # Equivalent conditions: each arm must match on its
                # own.  A whole-node vector fallback here would mask a
                # mismatch hiding in the arm a one-sided condition
                # never selects (the classic off-by-one branch-target
                # bug).  Arm comparison still drops to vectors where
                # the two sides' structure genuinely diverges.
                result = self._deep_equal(a[2], b[2]) and self._deep_equal(
                    a[3], b[3]
                )
            else:
                result = all(
                    self._deep_equal(x, y) for x, y in zip(a[1:], b[1:])
                ) or self._vector_equal(a, b)
        else:
            result = self._vector_equal(a, b)
        self._eq_cache[key] = (a, b, result)
        return result

    def _deep_equal(self, a: Any, b: Any) -> bool:
        if a is b:
            return True
        if _is_expr(a) and _is_expr(b):
            return self.equal(a, b)
        if isinstance(a, tuple) and isinstance(b, tuple):
            return len(a) == len(b) and all(
                self._deep_equal(x, y) for x, y in zip(a, b)
            )
        return a == b

    def _vector_equal(self, a: Expr, b: Expr) -> bool:
        try:
            for vec in range(self.VECTORS):
                if self._norm(self.eval(a, vec)) != self._norm(
                    self.eval(b, vec)
                ):
                    return False
        except _EvalError:
            return False
        return True

    @classmethod
    def _norm(cls, value: Any) -> Any:
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, tuple):
            return tuple(cls._norm(v) for v in value)
        return value

    def eval(self, expr: Expr, vec: int) -> Any:
        key = (id(expr), vec)
        hit = self._cache.get(key)
        if hit is not None:
            return hit[1]
        try:
            value = self._eval(expr, vec)
        except _EvalError:
            raise
        except Exception as exc:
            raise _EvalError(str(exc)) from exc
        self._cache[key] = (expr, value)
        return value

    def _eval(self, expr: Expr, vec: int) -> Any:
        tag = expr[0]
        if tag == "const":
            return expr[1]
        if tag == "r":
            index = expr[1]
            if vec == 0:
                return index * 1_000_003 + 17
            if vec == 1:
                return _CORNERS[index % len(_CORNERS)]
            return _signed_hash("r", index, vec)
        if tag in ("w", "d"):
            return _signed_hash(tag, expr[1], vec) & 0xFFFF_FFFF
        if tag == "var":
            return _hash_int("var", expr[1], vec) & 0x7FFF_FFFF
        if tag == "undef":
            return _hash_int("undef", expr[1], vec) & 0x7FFF_FFFF
        if tag == "memval":
            return _signed_hash("memval", expr[1], vec)
        if tag == "traceidx":
            return expr[1]
        if tag == "loopvar":
            return _hash_int("loopvar", expr[1], vec) & 0x7FFF_FFFF
        if tag == "ctx":
            return _hash_int("ctx", expr[1], vec) & 0x7FFF_FFFF
        if tag == "ctxsub":
            return (
                _hash_int("ctxsub", expr[1], self.eval(expr[2], vec), vec)
                & 0x7FFF_FFFF
            )
        if tag == "sub":
            return _signed_hash(
                "sub", self.eval(expr[1], vec), self.eval(expr[2], vec), vec
            )
        if tag == "while":
            _, digest, var, inputs = expr
            values = tuple(
                (name, self.eval(val, vec)) for name, val in inputs
            )
            return _hash_int("while", digest, var, values, vec) & 0x7FFF_FFFF
        if tag in ("pcall", "ecall"):
            _, name, ordinal, args = expr
            values = tuple(self.eval(a, vec) for a in args)
            h = _hash_int("call", name, ordinal, values, vec)
            if name in _NULLABLE_CALLS:
                return None if h & 3 == 0 else h & 0x7FFF_FFFF
            if name in ("predict", "predict_ind"):
                return bool(h & 1)
            if name == "sget":
                return h & 0xFF
            return _signed_hash("call", name, ordinal, values, vec)
        if tag == "builtin":
            values = tuple(self.eval(a, vec) for a in expr[2])
            return _hash_int("builtin", expr[1], values, vec) & 0x7FFF_FFFF
        if tag == "maxmin":
            values = [self.eval(a, vec) for a in expr[2]]
            return max(values) if expr[1] == "max" else min(values)
        if tag == "opapply":
            return self.decoded.alu[expr[1]](
                self.eval(expr[2], vec), self.eval(expr[3], vec)
            )
        if tag == "brapply":
            return self.decoded.branch[expr[1]](
                self.eval(expr[2], vec), self.eval(expr[3], vec)
            )
        if tag == "bin":
            return self._bin(
                expr[1], self.eval(expr[2], vec), self.eval(expr[3], vec)
            )
        if tag == "cmp":
            left = self.eval(expr[2], vec)
            right = self.eval(expr[3], vec)
            op = expr[1]
            if op == "==":
                return left == right
            if op == "!=":
                return left != right
            if op == "<":
                return left < right
            if op == "<=":
                return left <= right
            if op == ">":
                return left > right
            return left >= right
        if tag == "isnone":
            return self._isnone(expr[1], vec)
        if tag == "notnone":
            return not self._isnone(expr[1], vec)
        if tag == "in":
            return bool(
                _hash_int(
                    "in", self.eval(expr[1], vec), self.eval(expr[2], vec)
                )
                & 1
            )
        if tag == "not":
            return not self.eval(expr[1], vec)
        if tag == "neg":
            return -self.eval(expr[1], vec)
        if tag in ("and", "or"):
            result: Any = tag == "and"
            for sub in expr[1]:
                result = self.eval(sub, vec)
                if (tag == "and") != bool(result):
                    return result
            return result
        if tag == "ite":
            if self.eval(expr[1], vec):
                return self.eval(expr[2], vec)
            return self.eval(expr[3], vec)
        if tag in ("tuple", "list"):
            return tuple(self.eval(e, vec) for e in expr[1])
        raise _EvalError(f"unknown expression tag {tag!r}")

    def _isnone(self, sub: Expr, vec: int) -> bool:
        return self.eval(sub, vec) is None

    @staticmethod
    def _bin(op: str, left: Any, right: Any) -> int:
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "&":
            return left & right
        if op == "|":
            return left | right
        if op == "^":
            return left ^ right
        if op == "<<":
            if not 0 <= right <= 64:
                right &= 63
            return left << right
        if op == ">>":
            if not 0 <= right <= 64:
                right &= 63
            return left >> right
        if op == "%":
            return left % (right if right else 97)
        raise _EvalError(f"unknown binary operator {op!r}")


# ----------------------------------------------------------------------
# Reference effect-summary sources
# ----------------------------------------------------------------------


def _ref_addr(decoded: DecodedProgram, pc: int) -> str:
    imm = decoded.imm[pc]
    if imm:
        return f"regs[{decoded.rs1[pc]}] + ({imm})"
    return f"regs[{decoded.rs1[pc]}]"


def functional_reference_source(
    decoded: DecodedProgram,
    start: int,
    end: int,
    tracing: bool,
    caching: bool,
) -> str:
    """Reference source for a functional block, straight from the
    decoded arrays, mirroring ``FunctionalSimulator._interp``'s
    per-kind statements with opcode applications left opaque."""
    lines = ["def _ref(regs, lw):"]
    emit = lines.append
    terminated = False
    for pc in range(start, end):
        k = decoded.kind[pc]
        rd = decoded.rd[pc]
        rs1 = decoded.rs1[pc]
        rs2 = decoded.rs2[pc]
        if k == K_ALU_R or k == K_ALU_I:
            if tracing:
                if rd:
                    emit("    idx = tb_len()")
                dep2 = f"lw[{rs2}]" if k == K_ALU_R else "-1"
                emit(f"    tb_a(({pc}, -1, 0, lw[{rs1}], {dep2}, -1, False))")
            if rd:
                operand = (
                    f"regs[{rs2}]"
                    if k == K_ALU_R
                    else f"({decoded.imm[pc]})"
                )
                emit(f"    regs[{rd}] = __op_{pc}(regs[{rs1}], {operand})")
                if tracing:
                    emit(f"    lw[{rd}] = idx")
        elif k == K_LOAD:
            emit(f"    a = {_ref_addr(decoded, pc)}")
            emit(f"    {'v = ' if rd else ''}mem_load(a)")
            if caching:
                emit("    lvl = hier_access(a)")
                emit("    llc[lvl] += 1")
            if tracing:
                lvl = "lvl" if caching else "0"
                if rd:
                    emit("    idx = tb_len()")
                emit(
                    f"    tb_a(({pc}, a, {lvl}, lw[{rs1}], -1, "
                    "ls_get(a, -1), False))"
                )
            if rd:
                emit(f"    regs[{rd}] = v")
                if tracing:
                    emit(f"    lw[{rd}] = idx")
        elif k == K_STORE:
            emit(f"    a = {_ref_addr(decoded, pc)}")
            emit(f"    mem_store(a, regs[{rs2}])")
            if caching:
                emit("    hier_access(a, True)")
            if tracing:
                emit("    last_store[a] = tb_len()")
                emit(
                    f"    tb_a(({pc}, a, 0, lw[{rs1}], lw[{rs2}], -1, False))"
                )
        elif k == K_BRANCH:
            emit(f"    t = __br_{pc}(regs[{rs1}], regs[{rs2}])")
            if tracing:
                emit(f"    tb_a(({pc}, -1, 0, lw[{rs1}], lw[{rs2}], -1, t))")
            emit(f"    return {decoded.target[pc]} if t else {pc + 1}")
            terminated = True
        elif k == K_JUMP:
            if tracing:
                emit(f"    tb_a(({pc}, -1, 0, -1, -1, -1, True))")
            emit(f"    return {decoded.target[pc]}")
            terminated = True
        elif k == K_JAL:
            if tracing:
                if rd:
                    emit("    idx = tb_len()")
                emit(f"    tb_a(({pc}, -1, 0, -1, -1, -1, True))")
            if rd:
                emit(f"    regs[{rd}] = {pc + 1}")
                if tracing:
                    emit(f"    lw[{rd}] = idx")
            emit(f"    return {decoded.target[pc]}")
            terminated = True
        elif k == K_JR:
            if tracing:
                emit(f"    tb_a(({pc}, -1, 0, lw[{rs1}], -1, -1, True))")
            emit(f"    return regs[{rs1}]")
            terminated = True
        elif k == K_HALT:
            if tracing:
                emit(f"    tb_a(({pc}, -1, 0, -1, -1, -1, False))")
            emit("    return -1")
            terminated = True
        elif k == K_NOP:
            if tracing:
                emit(f"    tb_a(({pc}, -1, 0, -1, -1, -1, False))")
        else:
            raise UnvalidatableConstruct(f"unknown kind {k} at pc {pc}")
    if not terminated:
        emit(f"    return {end}")
    return "\n".join(lines) + "\n"


@dataclass(frozen=True)
class TimingParams:
    """Machine and schedule constants a timing variant was compiled for."""

    window: int
    bw_seq: int
    dispatch_latency: int
    mispredict_penalty: int
    forward_latency: int
    launching: bool
    stealing: bool
    prefetching: bool
    trigger_pcs: FrozenSet[int] = frozenset()
    hinted_pcs: FrozenSet[int] = frozenset()


_TIMING_RETURN = "executed, fetch_cycle, cap_used, last_retire"


def timing_reference_source(
    decoded: DecodedProgram,
    start: int,
    end: int,
    params: TimingParams,
) -> str:
    """Reference source for a timing block, mirroring
    ``TimingSimulator._interp`` with the machine constants folded in.

    Two deliberate shape differences exercise the concrete-vector
    equivalence machinery: the retire-ring slot uses ``%`` where the
    compiled code strength-reduces to ``&``, and ready-time maxima use
    ``max()`` where the compiled code emits conditional expressions.
    The fetch-slot stealing loop is emitted token-identical to the
    compiled text on purpose: unbounded loops are summarized by AST
    digest, so the reference must agree on the loop's code, and the
    *semantic* content being validated there is the pair of folded
    constants, which the digest covers.
    """
    lines = [
        "def _ref(executed, fetch_cycle, cap_used, last_retire, regs, rdy):"
    ]
    emit = lines.append
    terminated = False

    def prologue() -> None:
        emit("    executed += 1")
        emit(f"    rs = executed % {params.window}")
        emit("    ws = ring[rs]")
        emit("    if ws > fetch_cycle:")
        emit("        fetch_cycle = ws")
        emit("        cap_used = 0")
        if params.stealing:
            emit(
                f"    while cap_used >= {params.bw_seq} - "
                "sget(fetch_cycle, 0):"
            )
        else:
            emit(f"    if cap_used >= {params.bw_seq}:")
        emit("        fetch_cycle += 1")
        emit("        cap_used = 0")
        emit("    cap_used += 1")
        emit(f"    disp = fetch_cycle + {params.dispatch_latency}")

    def retire() -> None:
        emit("    if complete < last_retire:")
        emit("        complete = last_retire")
        emit("    last_retire = complete")
        emit("    ring[rs] = complete")

    def trigger(pc: int) -> None:
        if params.launching and pc in params.trigger_pcs:
            emit(f"    w = trig[0].get({pc})")
            emit("    if w is not None:")
            emit("        launch(w, disp)")

    for pc in range(start, end):
        k = decoded.kind[pc]
        rd = decoded.rd[pc]
        rs1 = decoded.rs1[pc]
        rs2 = decoded.rs2[pc]
        lat = decoded.latency[pc]
        prologue()
        if k == K_ALU_R or k == K_ALU_I:
            if k == K_ALU_R:
                emit(f"    ready = max(rdy[{rs1}], rdy[{rs2}], disp)")
                operand = f"regs[{rs2}]"
            else:
                emit(f"    ready = max(rdy[{rs1}], disp)")
                operand = f"({decoded.imm[pc]})"
            emit(f"    complete = ready + {lat}")
            if rd:
                emit(f"    regs[{rd}] = __op_{pc}(regs[{rs1}], {operand})")
                emit(f"    rdy[{rd}] = complete")
            retire()
            trigger(pc)
        elif k == K_LOAD:
            emit(f"    a = {_ref_addr(decoded, pc)}")
            emit(f"    {'v = ' if rd else ''}mem_load(a)")
            emit(f"    ready = max(rdy[{rs1}], disp)")
            emit("    issue = ready + 1")
            emit("    fw = sq_get(a)")
            emit("    if fw is not None:")
            emit("        dr = fw[0]")
            emit(
                f"        complete = max(dr, issue) + {params.forward_latency}"
            )
            emit("    else:")
            emit("        lvl, complete = mt(a, issue)")
            emit("        if lvl != 1:")
            emit("            tallies[0] += 1")
            emit("        if lvl == 3:")
            emit(f"            e = mexp.get({pc})")
            emit("            if e is None:")
            emit("                e = [0, 0]")
            emit(f"                mexp[{pc}] = e")
            emit("            e[0] += 1")
            emit("            x = complete - last_retire")
            emit("            if x > 0:")
            emit("                e[1] += x")
            if params.prefetching:
                emit(f"        for tgt in observe({pc}, a):")
                emit("            pt(tgt, issue)")
            if rd:
                emit(f"    regs[{rd}] = v")
                emit(f"    rdy[{rd}] = complete")
            retire()
            trigger(pc)
        elif k == K_STORE:
            emit(f"    a = {_ref_addr(decoded, pc)}")
            emit(f"    mem_store(a, regs[{rs2}])")
            emit(f"    ready = max(rdy[{rs1}], disp)")
            emit("    complete = ready + 1")
            emit("    lvl, _c = mt(a, complete, True)")
            emit("    if lvl != 1:")
            emit("        tallies[0] += 1")
            emit("    if a in sq:")
            emit("        del sq[a]")
            emit(
                f"    sq[a] = (max(complete, rdy[{rs2}]), regs[{rs2}])"
            )
            emit("    if len(sq) > 64:")
            emit("        del sq[next(iter(sq))]")
            retire()
            trigger(pc)
        elif k == K_BRANCH:
            target = decoded.target[pc]
            hinted = params.launching and pc in params.hinted_pcs
            emit(f"    t = __br_{pc}(regs[{rs1}], regs[{rs2}])")
            emit(f"    ready = max(rdy[{rs1}], rdy[{rs2}], disp)")
            emit("    complete = ready + 1")
            emit(f"    correct = predict({pc}, t, {target})")
            if hinted:
                emit(f"    inst = bc_get({pc}, 0)")
                emit(f"    bc[{pc}] = inst + 1")
                emit(f"    pp = bh_get({pc})")
                emit(
                    "    hint = pp.pop(inst, None) "
                    "if pp is not None else None"
                )
            emit("    if not correct:")
            emit("        tallies[1] += 1")
            if hinted:
                emit(
                    "        if hint is not None and hint[0] <= "
                    "fetch_cycle and hint[1] == (1 if t else 0):"
                )
                emit("            tallies[2] += 1")
                emit("        else:")
                emit(
                    "            fetch_cycle = complete + "
                    f"{params.mispredict_penalty}"
                )
                emit("            cap_used = 0")
            else:
                emit(
                    "        fetch_cycle = complete + "
                    f"{params.mispredict_penalty}"
                )
                emit("        cap_used = 0")
            retire()
            trigger(pc)
            emit(
                f"    return ({target} if t else {pc + 1}), {_TIMING_RETURN}"
            )
            terminated = True
        elif k == K_JUMP:
            emit("    complete = disp")
            retire()
            trigger(pc)
            emit(f"    return {decoded.target[pc]}, {_TIMING_RETURN}")
            terminated = True
        elif k == K_JAL:
            emit("    complete = disp")
            if rd:
                emit(f"    regs[{rd}] = {pc + 1}")
                emit(f"    rdy[{rd}] = complete")
            retire()
            trigger(pc)
            emit(f"    return {decoded.target[pc]}, {_TIMING_RETURN}")
            terminated = True
        elif k == K_JR:
            emit(f"    ready = max(rdy[{rs1}], disp)")
            emit("    complete = ready + 1")
            emit(f"    npc = regs[{rs1}]")
            emit(f"    correct = predict_ind({pc}, npc)")
            emit("    if not correct:")
            emit("        tallies[1] += 1")
            emit(
                "        fetch_cycle = complete + "
                f"{params.mispredict_penalty}"
            )
            emit("        cap_used = 0")
            retire()
            trigger(pc)
            emit(f"    return npc, {_TIMING_RETURN}")
            terminated = True
        elif k == K_HALT:
            emit("    complete = disp")
            emit("    if complete > last_retire:")
            emit("        last_retire = complete")
            emit("    ring[rs] = last_retire")
            emit(f"    return -1, {_TIMING_RETURN}")
            terminated = True
        elif k == K_NOP:
            emit("    complete = disp")
            retire()
            trigger(pc)
        else:
            raise UnvalidatableConstruct(f"unknown kind {k} at pc {pc}")
    if not terminated:
        emit(f"    return {end}, {_TIMING_RETURN}")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Summary comparison
# ----------------------------------------------------------------------


def _fmt(expr: Any, depth: int = 4, limit: int = 96) -> str:
    """Depth-bounded rendering: expressions are DAGs, so a full repr()
    would expand shared subterms exponentially."""
    text = _fmt_inner(expr, depth)
    return text if len(text) <= limit else text[: limit - 3] + "..."


def _fmt_inner(expr: Any, depth: int) -> str:
    if not isinstance(expr, tuple):
        return repr(expr)
    if depth <= 0:
        head = expr[0] if expr and isinstance(expr[0], str) else "..."
        return f"({head}, ...)"
    parts = [_fmt_inner(e, depth - 1) for e in expr[:6]]
    if len(expr) > 6:
        parts.append("...")
    return "(" + ", ".join(parts) + ")"


def _stream_code(stream: str) -> str:
    return "CG002" if stream in _MEMORY_STREAMS else "CG004"


def _diag(code: str, pc: int, message: str) -> Diagnostic:
    severity = Severity.INFO if code == "CG101" else Severity.ERROR
    return Diagnostic(code=code, severity=severity, message=message, pc=pc)


def _guards_equal(eq: _Equiv, g1: Guard, g2: Guard) -> bool:
    if len(g1) != len(g2):
        return False
    for e1, e2 in zip(g1, g2):
        if e1[0] == "loop" or e2[0] == "loop":
            if e1[0] != e2[0] or not eq.equal(e1[1], e2[1]):
                return False
        elif e1[1] != e2[1] or not eq.equal(e1[0], e2[0]):
            return False
    return True


def _payload_equal(eq: _Equiv, p1: Tuple, p2: Tuple) -> bool:
    tag1, name1, args1 = p1[0], p1[1], p1[2]
    tag2, name2, args2 = p2[0], p2[1], p2[2]
    if tag1 != tag2 or name1 != name2 or len(args1) != len(args2):
        return False
    return all(eq.equal(a1, a2) for a1, a2 in zip(args1, args2))


def _normalize_payload(payload: Tuple) -> Tuple:
    """Payloads are ``(tag, name_or_None, arg_expr_tuple)``; call
    payloads are recorded as ``("call", name, args)``."""
    if payload[0] == "call":
        return ("call", payload[1], payload[2])
    return payload


def _compare_effects(
    eq: _Equiv,
    start: int,
    comp: _Summary,
    ref: _Summary,
    diags: List[Diagnostic],
) -> None:
    comp_streams: Dict[str, List[Tuple[Guard, Tuple]]] = {}
    ref_streams: Dict[str, List[Tuple[Guard, Tuple]]] = {}
    for streams, summary in ((comp_streams, comp), (ref_streams, ref)):
        for stream, guard, payload in summary.effects:
            streams.setdefault(stream, []).append(
                (guard, _normalize_payload(payload))
            )
    for stream in sorted(set(comp_streams) | set(ref_streams)):
        got = comp_streams.get(stream, [])
        want = ref_streams.get(stream, [])
        code = _stream_code(stream)
        if len(got) != len(want):
            diags.append(
                _diag(
                    code,
                    start,
                    f"block _b{start}: {stream} effect count mismatch: "
                    f"generated code has {len(got)}, reference has "
                    f"{len(want)}",
                )
            )
            continue
        for index, ((g1, p1), (g2, p2)) in enumerate(zip(got, want)):
            if not _payload_equal(eq, p1, p2):
                diags.append(
                    _diag(
                        code,
                        start,
                        f"block _b{start}: {stream} effect #{index} "
                        f"differs: generated {_fmt(p1)} vs reference "
                        f"{_fmt(p2)}",
                    )
                )
            elif not _guards_equal(eq, g1, g2):
                diags.append(
                    _diag(
                        code,
                        start,
                        f"block _b{start}: {stream} effect #{index} "
                        f"fires under a different condition: generated "
                        f"{_fmt(g1)} vs reference {_fmt(g2)}",
                    )
                )


_SCALAR_NAMES = ("executed", "fetch_cycle", "cap_used", "last_retire")


def _compare_summaries(
    decoded: DecodedProgram,
    start: int,
    comp: _Summary,
    ref: _Summary,
    timing: bool,
) -> List[Diagnostic]:
    diags: List[Diagnostic] = []
    eq = _Equiv(decoded)

    # Register-file finals: architectural registers are CG001; the
    # last-writer and ready tables are trace/latency metadata (CG004).
    keys = {
        key
        for key in set(comp.env) | set(ref.env)
        if isinstance(key, tuple)
    }
    for key in sorted(keys):
        tag, index = key
        got = comp.env.get(key, key)
        want = ref.env.get(key, key)
        if not eq.equal(got, want):
            if tag == "r":
                code, what = "CG001", f"register r{index}"
            elif tag == "w":
                code, what = "CG004", f"last-writer slot lw[{index}]"
            else:
                code, what = "CG004", f"ready time rdy[{index}]"
            diags.append(
                _diag(
                    code,
                    start,
                    f"block _b{start}: {what} final value differs: "
                    f"generated {_fmt(got)} vs reference {_fmt(want)}",
                )
            )

    _compare_effects(eq, start, comp, ref, diags)

    # Successor PC and (for timing) the returned scheduling scalars.
    got_ret, want_ret = comp.ret, ref.ret
    if got_ret is None or want_ret is None:
        if got_ret != want_ret:
            diags.append(
                _diag(
                    "CG003",
                    start,
                    f"block _b{start}: one side does not return "
                    f"(generated {_fmt(got_ret)}, reference "
                    f"{_fmt(want_ret)})",
                )
            )
        return diags
    if timing:
        ok_shape = (
            got_ret[0] == "tuple"
            and want_ret[0] == "tuple"
            and len(got_ret[1]) == 5
            and len(want_ret[1]) == 5
        )
        if not ok_shape:
            diags.append(
                _diag(
                    "CG003",
                    start,
                    f"block _b{start}: timing return is not the "
                    f"(pc, {', '.join(_SCALAR_NAMES)}) tuple: generated "
                    f"{_fmt(got_ret)} vs reference {_fmt(want_ret)}",
                )
            )
            return diags
        if not eq.equal(got_ret[1][0], want_ret[1][0]):
            diags.append(
                _diag(
                    "CG003",
                    start,
                    f"block _b{start}: successor PC differs: generated "
                    f"{_fmt(got_ret[1][0])} vs reference "
                    f"{_fmt(want_ret[1][0])}",
                )
            )
        for pos, name in enumerate(_SCALAR_NAMES, start=1):
            if not eq.equal(got_ret[1][pos], want_ret[1][pos]):
                diags.append(
                    _diag(
                        "CG004",
                        start,
                        f"block _b{start}: returned {name} differs: "
                        f"generated {_fmt(got_ret[1][pos])} vs reference "
                        f"{_fmt(want_ret[1][pos])}",
                    )
                )
    elif not eq.equal(got_ret, want_ret):
        diags.append(
            _diag(
                "CG003",
                start,
                f"block _b{start}: successor PC differs: generated "
                f"{_fmt(got_ret)} vs reference {_fmt(want_ret)}",
            )
        )
    return diags


# ----------------------------------------------------------------------
# Whole-program structural checks
# ----------------------------------------------------------------------


def _structural_diagnostics(
    decoded: DecodedProgram,
    compiled: CompiledBlocks,
    bind: ast.FunctionDef,
    extra_leaders: Sequence[int],
    only_blocks: Optional[Sequence[int]] = None,
) -> List[Diagnostic]:
    diags: List[Diagnostic] = []
    n = len(decoded)
    actual = [
        (start, start + length)
        for start, length in zip(compiled.starts, compiled.lengths)
    ]
    full = discover_blocks(decoded, extra_leaders=extra_leaders)
    if only_blocks is None:
        expected = full
    else:
        members = frozenset(only_blocks)
        expected = [block for block in full if block[0] in members]
    if actual != expected:
        diags.append(
            _diag(
                "CG003",
                0,
                f"block partition mismatch: compiled {actual[:8]}... vs "
                f"leader analysis {expected[:8]}...",
            )
        )
    # Independent partition sanity: a full compilation must cover the
    # program exactly; a tiered subset compilation must emit only
    # genuine blocks of the full partition.  Either way, no control
    # transfer may be buried inside a block.
    terminators = frozenset((K_BRANCH, K_JUMP, K_JAL, K_JR, K_HALT))
    if only_blocks is None:
        covered = 0
        for start, end in actual:
            if start != covered:
                diags.append(
                    _diag(
                        "CG003",
                        start,
                        f"block gap/overlap: block starts at {start}, "
                        f"coverage so far ends at {covered}",
                    )
                )
            covered = end
        if actual and covered != n:
            diags.append(
                _diag(
                    "CG003",
                    covered,
                    f"blocks cover [0, {covered}) but the program has {n} "
                    "instructions",
                )
            )
    else:
        full_set = frozenset(full)
        for start, end in actual:
            if (start, end) not in full_set:
                diags.append(
                    _diag(
                        "CG003",
                        start,
                        f"block [{start}, {end}) is not a basic block "
                        "of the full partition",
                    )
                )
    for start, end in actual:
        for pc in range(start, end - 1):
            if decoded.kind[pc] in terminators:
                diags.append(
                    _diag(
                        "CG003",
                        pc,
                        f"terminator at pc {pc} buried inside block "
                        f"[{start}, {end})",
                    )
                )
    # Dispatch table literal: every block maps its leader to its own
    # function, length, and index.
    ret = bind.body[-1] if bind.body else None
    table: Dict[int, Tuple[str, int, int]] = {}
    if (
        isinstance(ret, ast.Return)
        and isinstance(ret.value, ast.Dict)
    ):
        for key, value in zip(ret.value.keys, ret.value.values):
            if (
                isinstance(key, ast.Constant)
                and isinstance(value, ast.Tuple)
                and len(value.elts) == 3
                and isinstance(value.elts[0], ast.Name)
                and isinstance(value.elts[1], ast.Constant)
                and isinstance(value.elts[2], ast.Constant)
            ):
                table[key.value] = (
                    value.elts[0].id,
                    value.elts[1].value,
                    value.elts[2].value,
                )
    expected_table = {
        start: (f"_b{start}", length, index)
        for index, (start, length) in enumerate(
            zip(compiled.starts, compiled.lengths)
        )
    }
    if table != expected_table:
        for start in sorted(set(table) | set(expected_table)):
            if table.get(start) != expected_table.get(start):
                diags.append(
                    _diag(
                        "CG003",
                        start,
                        f"dispatch table entry for leader {start} is "
                        f"{table.get(start)}, expected "
                        f"{expected_table.get(start)}",
                    )
                )
    return diags


def fallback_reason(decoded: DecodedProgram) -> str:
    """Why ``compile_functional``/``compile_timing`` returned ``None``."""
    n = len(decoded)
    if not n:
        return "empty program"
    if n > MAX_PROGRAM:
        return f"program length {n} exceeds MAX_PROGRAM ({MAX_PROGRAM})"
    known = frozenset(
        (
            K_ALU_R,
            K_ALU_I,
            K_LOAD,
            K_STORE,
            K_BRANCH,
            K_JUMP,
            K_JAL,
            K_JR,
            K_NOP,
            K_HALT,
        )
    )
    for pc in range(n):
        kind = decoded.kind[pc]
        if kind not in known:
            return f"unknown instruction kind {kind} at pc {pc}"
        op = decoded.program.instructions[pc].op
        if kind in (K_ALU_R, K_ALU_I) and op not in _ALU_TEMPLATES:
            return f"no ALU template for {op} at pc {pc}"
        if kind == K_BRANCH and op not in _BRANCH_OPS:
            return f"no branch template for {op} at pc {pc}"
    return "unknown reason (compiler returned None unexpectedly)"


# ----------------------------------------------------------------------
# Public entry points
# ----------------------------------------------------------------------


@dataclass
class TransvalResult:
    """Outcome of validating one compiled program variant (or several,
    via :meth:`merge`)."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    blocks_checked: int = 0
    blocks_failed: int = 0
    blocks_unvalidatable: int = 0
    fallbacks: int = 0

    @property
    def ok(self) -> bool:
        return not any(
            d.severity is Severity.ERROR for d in self.diagnostics
        )

    def merge(self, other: "TransvalResult") -> "TransvalResult":
        self.diagnostics = sort_diagnostics(
            self.diagnostics + other.diagnostics
        )
        self.blocks_checked += other.blocks_checked
        self.blocks_failed += other.blocks_failed
        self.blocks_unvalidatable += other.blocks_unvalidatable
        self.fallbacks += other.fallbacks
        return self


def _publish(result: TransvalResult) -> None:
    registry = get_registry()
    if result.blocks_checked:
        registry.counter("analysis.transval.blocks_checked").inc(
            result.blocks_checked
        )
    if result.blocks_failed:
        registry.counter("analysis.transval.blocks_failed").inc(
            result.blocks_failed
        )
    if result.blocks_unvalidatable:
        registry.counter("analysis.transval.blocks_unvalidatable").inc(
            result.blocks_unvalidatable
        )


@contextlib.contextmanager
def _deep_recursion(limit: int = 50_000):
    """Symbolic evaluation recurses to the expression-DAG depth, which
    for a MAX_BLOCK-length block runs well past the default limit."""
    previous = sys.getrecursionlimit()
    sys.setrecursionlimit(max(previous, limit))
    try:
        yield
    finally:
        sys.setrecursionlimit(previous)


def _validate(
    decoded: DecodedProgram,
    compiled: Optional[CompiledBlocks],
    mode: str,
    reference: Callable[[int, int], str],
    extra_leaders: Sequence[int],
    expected_args: Tuple[str, ...],
    only_blocks: Optional[Sequence[int]] = None,
) -> TransvalResult:
    result = TransvalResult()
    with get_tracer().span(f"analysis.transval.{mode}"), _deep_recursion():
        if compiled is None:
            result.fallbacks = 1
            result.diagnostics.append(
                _diag(
                    "CG101",
                    0,
                    f"{mode} codegen fell back to the interpreter: "
                    f"{fallback_reason(decoded)}",
                )
            )
            _publish(result)
            return result
        tree = ast.parse(compiled.source)
        bind = tree.body[0]
        if not (
            isinstance(bind, ast.FunctionDef) and bind.name == "_bind"
        ):
            result.diagnostics.append(
                _diag("CG005", 0, "generated module does not define _bind")
            )
            _publish(result)
            return result
        functions = {
            stmt.name: stmt
            for stmt in bind.body
            if isinstance(stmt, ast.FunctionDef)
        }
        result.diagnostics.extend(
            _structural_diagnostics(
                decoded, compiled, bind, extra_leaders, only_blocks
            )
        )
        for start, length in zip(compiled.starts, compiled.lengths):
            end = start + length
            result.blocks_checked += 1
            block_diags: List[Diagnostic] = []
            fn = functions.get(f"_b{start}")
            if fn is None:
                block_diags.append(
                    _diag(
                        "CG003",
                        start,
                        f"no generated function _b{start} for block "
                        f"leader {start}",
                    )
                )
            elif tuple(a.arg for a in fn.args.args) != expected_args:
                block_diags.append(
                    _diag(
                        "CG005",
                        start,
                        f"block _b{start} signature "
                        f"{tuple(a.arg for a in fn.args.args)} != "
                        f"{expected_args}",
                    )
                )
            else:
                try:
                    comp_sum = _Extractor(decoded).run(fn)
                    ref_fn = ast.parse(reference(start, end)).body[0]
                    assert isinstance(ref_fn, ast.FunctionDef)
                    ref_sum = _Extractor(decoded).run(ref_fn)
                    block_diags = _compare_summaries(
                        decoded, start, comp_sum, ref_sum, mode == "timing"
                    )
                except UnvalidatableConstruct as exc:
                    block_diags = [
                        _diag(
                            "CG005",
                            start,
                            f"block _b{start}: {exc.detail}",
                        )
                    ]
            if any(d.severity is Severity.ERROR for d in block_diags):
                result.blocks_failed += 1
                if any(d.code == "CG005" for d in block_diags):
                    result.blocks_unvalidatable += 1
            result.diagnostics.extend(block_diags)
        result.diagnostics = sort_diagnostics(result.diagnostics)
        _publish(result)
    return result


def validate_functional(
    decoded: DecodedProgram,
    compiled: Optional[CompiledBlocks],
    *,
    tracing: bool,
    caching: bool,
    only_blocks: Optional[Sequence[int]] = None,
) -> TransvalResult:
    """Validate a functional-engine compilation against the decode.

    ``only_blocks`` marks a tiered subset compilation: structural
    checks then require membership in the full partition instead of
    exact program coverage.
    """

    def reference(start: int, end: int) -> str:
        return functional_reference_source(
            decoded, start, end, tracing, caching
        )

    return _validate(
        decoded,
        compiled,
        "functional",
        reference,
        extra_leaders=(),
        expected_args=("regs", "lw"),
        only_blocks=only_blocks,
    )


def validate_timing(
    decoded: DecodedProgram,
    compiled: Optional[CompiledBlocks],
    params: TimingParams,
    only_blocks: Optional[Sequence[int]] = None,
) -> TransvalResult:
    """Validate a timing-engine compilation against the decode.

    ``only_blocks`` marks a tiered subset compilation (see
    :func:`validate_functional`).
    """

    def reference(start: int, end: int) -> str:
        return timing_reference_source(decoded, start, end, params)

    return _validate(
        decoded,
        compiled,
        "timing",
        reference,
        extra_leaders=(
            sorted(params.trigger_pcs) if params.launching else ()
        ),
        expected_args=(
            "executed",
            "fetch_cycle",
            "cap_used",
            "last_retire",
            "regs",
            "rdy",
        ),
        only_blocks=only_blocks,
    )
