"""repro — a reproduction of Roth & Sohi's quantitative framework for
automated pre-execution thread selection (MICRO / UPenn TR MS-CIS-02-23,
2002).

The package layers, bottom to top:

* :mod:`repro.isa`, :mod:`repro.memory`, :mod:`repro.frontend`,
  :mod:`repro.engine` — the execution substrate: a small RISC ISA,
  caches/MSHRs/busses, branch prediction, and a tracing functional
  simulator;
* :mod:`repro.slicing` — dynamic backward slicing and the **slice
  tree**, the paper's compact space of candidate p-threads;
* :mod:`repro.model` — **aggregate advantage** (SCDH, LT, OH, ADVagg);
* :mod:`repro.selection` — the per-tree overlap-correcting solver and
  whole-program/region selection drivers;
* :mod:`repro.pthreads` — p-thread bodies, optimization, and merging;
* :mod:`repro.timing` — an SMT timing model with the pre-execution
  runtime (contexts, bursty injection, L2-only prefetch);
* :mod:`repro.workloads`, :mod:`repro.harness`, :mod:`repro.validation`
  — the benchmark suite, table/figure regeneration, and the
  predicted-vs-measured validation methodology.

Quickstart::

    from repro import ExperimentConfig, ExperimentRunner
    result = ExperimentRunner().run(ExperimentConfig(workload="pharmacy"))
    print(result.preexec.describe(), f"speedup {result.speedup:+.1%}")
"""

from repro.harness.artifacts import ArtifactCache
from repro.harness.experiment import (
    ExperimentConfig,
    ExperimentResult,
    ExperimentRunner,
)
from repro.harness.parallel import SweepExecutor
from repro.model.params import ModelParams, SelectionConstraints
from repro.pthreads.pthread import StaticPThread
from repro.selection.program_selector import ProgramSelection, select_pthreads
from repro.slicing.slice_tree import SliceTree, build_slice_trees
from repro.timing.config import MachineConfig
from repro.timing.stats import SimStats

__version__ = "1.0.0"

__all__ = [
    "ArtifactCache",
    "ExperimentConfig",
    "ExperimentResult",
    "ExperimentRunner",
    "MachineConfig",
    "ModelParams",
    "ProgramSelection",
    "SelectionConstraints",
    "SimStats",
    "SliceTree",
    "StaticPThread",
    "SweepExecutor",
    "__version__",
    "build_slice_trees",
    "select_pthreads",
]
