"""Differential fuzzing subsystem.

The fuzzer is the correctness backstop behind every equivalence claim
the repo makes: the compiled engine mirroring the interpreter, the
timing simulator committing the same architectural state the
functional simulator computes, selected p-threads satisfying the
PT001–PT006 invariants, and the analytical model's arithmetic staying
internally consistent.  Instead of pinning those claims to the 11
hand-written workloads, :mod:`repro.fuzz` generates fresh programs
from a seed and cross-checks every implementation pair end to end:

* :mod:`repro.fuzz.generator` — seeded, deterministic random workload
  generation from paper-relevant shape templates (pointer chasing,
  strided walks, loop nests with recurrent loads, branchy control);
* :mod:`repro.fuzz.oracle` — the differential oracle: five check
  families over one generated workload;
* :mod:`repro.fuzz.shrink` — greedy failure minimization plus corpus
  persistence / replay;
* :mod:`repro.fuzz.runner` — the ``repro fuzz`` campaign driver.
"""

from repro.fuzz.generator import (
    FUZZ_HIERARCHIES,
    SHAPES,
    FuzzWorkload,
    generate,
)
from repro.fuzz.oracle import (
    CHECK_FAMILIES,
    CheckFailure,
    OracleReport,
    run_oracle,
)
from repro.fuzz.runner import run_campaign
from repro.fuzz.shrink import load_reproducer, shrink, write_reproducer

__all__ = [
    "CHECK_FAMILIES",
    "CheckFailure",
    "FUZZ_HIERARCHIES",
    "FuzzWorkload",
    "OracleReport",
    "SHAPES",
    "generate",
    "load_reproducer",
    "run_campaign",
    "run_oracle",
    "shrink",
    "write_reproducer",
]
