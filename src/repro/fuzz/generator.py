"""Seeded random workload generator.

Emits small, valid, guaranteed-terminating assembly programs with the
memory-behaviour shapes the paper's benchmarks exhibit — serial pointer
chasing (mcf), strided array walks (bzip2), loop nests with recurrent
indirect loads (gcc/vortex hash probing), and branchy value-dependent
control (crafty/parser) — composed from the same building blocks the
hand-written suite uses: the :mod:`repro.isa` assembler and the
:class:`~repro.workloads.common.DataBuilder` data-image helpers.

Determinism is the load-bearing property: every random choice flows
from one ``random.Random(seed)``, so a seed fully reproduces the
program, its data image, and its cache hierarchy.  The generator emits
labels on their own source lines so the shrinker can delete any
instruction line without orphaning a branch target.

Termination is structural, not probabilistic: every loop is bounded by
a counter compared against a constant, or walks a finite null-terminated
chain built acyclic by construction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.isa.assembler import assemble
from repro.isa.program import Program
from repro.memory.cache import CacheConfig
from repro.memory.hierarchy import HierarchyConfig
from repro.workloads.common import DataBuilder

#: Shape templates the generator composes.  ``mixed`` concatenates
#: several of the single-kernel shapes into one program.
SHAPES: Tuple[str, ...] = (
    "pointer_chase",
    "stride",
    "loop_nest",
    "branchy",
    "mixed",
)

#: Hierarchies fuzz workloads run against: scaled so the generated
#: working sets (hundreds to thousands of words) actually miss.  The
#: paper geometry's line sizes / associativities / latencies are kept.
FUZZ_HIERARCHIES: Tuple[HierarchyConfig, ...] = (
    HierarchyConfig(
        l1=CacheConfig(name="L1D", size_bytes=1024, line_bytes=32, assoc=2, hit_latency=2),
        l2=CacheConfig(name="L2", size_bytes=4096, line_bytes=64, assoc=4, hit_latency=6),
        mem_latency=70,
        mshr_entries=8,
    ),
    HierarchyConfig(
        l1=CacheConfig(name="L1D", size_bytes=2048, line_bytes=32, assoc=2, hit_latency=2),
        l2=CacheConfig(name="L2", size_bytes=8192, line_bytes=64, assoc=4, hit_latency=6),
        mem_latency=110,
        mshr_entries=16,
    ),
)

#: Registers the generator may allocate (zero/ra/sp/gp are reserved).
_REG_POOL: Tuple[str, ...] = (
    "a0", "a1", "a2", "a3",
    "t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
    "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
    "u0", "u1", "u2", "u3", "u4", "u5", "u6", "u7",
)

#: Commutative accumulation opcodes templates pick from.
_ACC_OPS: Tuple[str, ...] = ("add", "xor", "or", "sub")


@dataclass(frozen=True)
class FuzzWorkload:
    """One generated workload: program, data, hierarchy, provenance."""

    name: str
    seed: int
    shape: str
    source: str
    program: Program
    hierarchy: HierarchyConfig
    metadata: Dict[str, Any] = field(default_factory=dict)


class _Regs:
    """Hands a kernel its private slice of the register pool."""

    def __init__(self, names: List[str]) -> None:
        self._names = list(names)

    def take(self) -> str:
        if not self._names:
            raise RuntimeError("kernel template exhausted its registers")
        return self._names.pop()


def _kernel_pointer_chase(
    rng: random.Random, data: DataBuilder, regs: _Regs, prefix: str
) -> Tuple[List[str], Dict[str, Any]]:
    """Serial pointer chasing over randomized null-terminated chains."""
    n_chains = rng.randint(2, 8)
    chain_length = rng.randint(4, 40)
    node_words = rng.choice((2, 4))
    arena_words = n_chains * chain_length * node_words
    arena_base = data.region(f"{prefix}arena", arena_words)
    slot_ids = list(range(n_chains * chain_length))
    rng.shuffle(slot_ids)
    heads: List[int] = []
    node_index = 0
    for _ in range(n_chains):
        chain = [
            arena_base + slot_ids[node_index + k] * node_words * 4
            for k in range(chain_length)
        ]
        node_index += chain_length
        heads.append(chain[0])
        for position, addr in enumerate(chain):
            next_ptr = chain[position + 1] if position + 1 < chain_length else 0
            payload = [next_ptr] + [
                rng.randint(1, 1000) for _ in range(node_words - 1)
            ]
            data.image.store_words(addr, payload)
    heads_base = data.words(f"{prefix}heads", heads)

    i, n, hp, node, v, acc = (regs.take() for _ in range(6))
    value_offset = 4 * rng.randint(1, node_words - 1)
    op = rng.choice(_ACC_OPS)
    lines = [
        f"    addi {i}, zero, 0",
        f"    addi {n}, zero, {n_chains}",
        f"    addi {hp}, zero, {heads_base}",
        f"    addi {acc}, zero, 0",
        f"{prefix}outer:",
        f"    bge  {i}, {n}, {prefix}done",
        f"    lw   {node}, 0({hp})",
        f"{prefix}walk:",
        f"    beq  {node}, zero, {prefix}next",
        f"    lw   {v}, {value_offset}({node})",
        f"    {op}  {acc}, {acc}, {v}",
        f"    lw   {node}, 0({node})",
        f"    j    {prefix}walk",
        f"{prefix}next:",
        f"    addi {hp}, {hp}, 4",
        f"    addi {i}, {i}, 1",
        f"    j    {prefix}outer",
        f"{prefix}done:",
    ]
    meta = dict(
        n_chains=n_chains,
        chain_length=chain_length,
        node_words=node_words,
    )
    return lines, meta


def _kernel_stride(
    rng: random.Random, data: DataBuilder, regs: _Regs, prefix: str
) -> Tuple[List[str], Dict[str, Any]]:
    """Strided array walk with a running reduction."""
    count = rng.randint(48, 1536)
    stride_words = rng.choice((1, 1, 2, 3, 4, 7, 9))
    array_base = data.random_words(
        f"{prefix}array", count * stride_words, 1, 1 << 20
    )
    i, n, ptr, v, acc = (regs.take() for _ in range(5))
    op = rng.choice(_ACC_OPS)
    lines = [
        f"    addi {i}, zero, 0",
        f"    addi {n}, zero, {count}",
        f"    addi {ptr}, zero, {array_base}",
        f"    addi {acc}, zero, 0",
        f"{prefix}loop:",
        f"    bge  {i}, {n}, {prefix}done",
        f"    lw   {v}, 0({ptr})",
        f"    {op}  {acc}, {acc}, {v}",
        f"    addi {ptr}, {ptr}, {4 * stride_words}",
        f"    addi {i}, {i}, 1",
        f"    j    {prefix}loop",
        f"{prefix}done:",
    ]
    # Optionally write the reduction back periodically so stores and
    # store-load dependences appear in some generated programs.
    if rng.random() < 0.5:
        out_base = data.words(f"{prefix}out", [0])
        out = regs.take()
        lines[4:4] = [f"    addi {out}, zero, {out_base}"]
        lines.insert(-3, f"    sw   {acc}, 0({out})")
    meta = dict(count=count, stride_words=stride_words)
    return lines, meta


def _kernel_loop_nest(
    rng: random.Random, data: DataBuilder, regs: _Regs, prefix: str
) -> Tuple[List[str], Dict[str, Any]]:
    """Loop nest probing a table through a loaded index (recurrent load).

    The inner loop loads an index, masks it into a power-of-two table,
    and loads the table entry — a two-level indirection whose second
    address depends on the first load's value, like hash probing.
    """
    rows = rng.randint(3, 16)
    cols = rng.randint(8, 48)
    table_words = rng.choice((256, 512, 1024, 2048))
    idx_base = data.random_words(
        f"{prefix}idx", rows * cols, 0, (1 << 16) - 1
    )
    table_base = data.random_words(f"{prefix}table", table_words, 1, 5000)
    mask = table_words - 1

    r, nr, c, nc, ip, idx, addr, v, acc = (regs.take() for _ in range(9))
    op = rng.choice(_ACC_OPS)
    lines = [
        f"    addi {r}, zero, 0",
        f"    addi {nr}, zero, {rows}",
        f"    addi {ip}, zero, {idx_base}",
        f"    addi {acc}, zero, 0",
        f"{prefix}row:",
        f"    bge  {r}, {nr}, {prefix}done",
        f"    addi {c}, zero, 0",
        f"    addi {nc}, zero, {cols}",
        f"{prefix}col:",
        f"    bge  {c}, {nc}, {prefix}rownext",
        f"    lw   {idx}, 0({ip})",
        f"    andi {idx}, {idx}, {mask}",
        f"    slli {addr}, {idx}, 2",
        f"    addi {addr}, {addr}, {table_base}",
        f"    lw   {v}, 0({addr})",
        f"    {op}  {acc}, {acc}, {v}",
        f"    addi {ip}, {ip}, 4",
        f"    addi {c}, {c}, 1",
        f"    j    {prefix}col",
        f"{prefix}rownext:",
        f"    addi {r}, {r}, 1",
        f"    j    {prefix}row",
        f"{prefix}done:",
    ]
    meta = dict(rows=rows, cols=cols, table_words=table_words)
    return lines, meta


def _kernel_branchy(
    rng: random.Random, data: DataBuilder, regs: _Regs, prefix: str
) -> Tuple[List[str], Dict[str, Any]]:
    """Value-dependent two-way branching over a random word array."""
    count = rng.randint(64, 768)
    array_base = data.random_words(f"{prefix}data", count, 0, 1 << 16)
    i, n, ptr, v, b, acc, alt = (regs.take() for _ in range(7))
    # Either branch on parity (data-random, predictor-hostile) or on a
    # threshold (biased, predictor-friendly).
    if rng.random() < 0.5:
        test = [f"    andi {b}, {v}, 1", f"    beq  {b}, zero, {prefix}even"]
        kind = "parity"
    else:
        threshold = rng.randint(1 << 12, 3 << 14)
        test = [
            f"    slti {b}, {v}, {threshold}",
            f"    beq  {b}, zero, {prefix}even",
        ]
        kind = "threshold"
    lines = [
        f"    addi {i}, zero, 0",
        f"    addi {n}, zero, {count}",
        f"    addi {ptr}, zero, {array_base}",
        f"    addi {acc}, zero, 0",
        f"    addi {alt}, zero, 0",
        f"{prefix}loop:",
        f"    bge  {i}, {n}, {prefix}done",
        f"    lw   {v}, 0({ptr})",
        *test,
        f"    add  {acc}, {acc}, {v}",
        f"    j    {prefix}join",
        f"{prefix}even:",
        f"    addi {alt}, {alt}, 1",
        f"    xor  {acc}, {acc}, {v}",
        f"{prefix}join:",
        f"    addi {ptr}, {ptr}, 4",
        f"    addi {i}, {i}, 1",
        f"    j    {prefix}loop",
        f"{prefix}done:",
    ]
    meta = dict(count=count, branch=kind)
    return lines, meta


_KERNELS = {
    "pointer_chase": _kernel_pointer_chase,
    "stride": _kernel_stride,
    "loop_nest": _kernel_loop_nest,
    "branchy": _kernel_branchy,
}


def generate(seed: int, shape: Optional[str] = None) -> FuzzWorkload:
    """Generate one workload, fully determined by ``seed`` (and shape).

    Args:
        seed: RNG seed; the same seed always produces the same source,
            data image, and hierarchy.
        shape: one of :data:`SHAPES`; ``None`` lets the seed choose.
    """
    rng = random.Random(seed)
    chosen = shape if shape is not None else rng.choice(SHAPES)
    if chosen not in SHAPES:
        raise ValueError(f"unknown shape {chosen!r}; known: {list(SHAPES)}")

    if chosen == "mixed":
        kernel_names = rng.sample(sorted(_KERNELS), rng.randint(2, 3))
    else:
        kernel_names = [chosen]

    pool = list(_REG_POOL)
    rng.shuffle(pool)
    data = DataBuilder(seed=rng.randrange(1 << 30))
    hierarchy = rng.choice(FUZZ_HIERARCHIES)

    lines: List[str] = []
    kernel_meta: List[Dict[str, Any]] = []
    per_kernel = len(pool) // max(len(kernel_names), 1)
    for index, kernel_name in enumerate(kernel_names):
        regs = _Regs(pool[index * per_kernel : (index + 1) * per_kernel])
        kernel_lines, meta = _KERNELS[kernel_name](
            rng, data, regs, prefix=f"k{index}_"
        )
        lines.extend(kernel_lines)
        meta["kernel"] = kernel_name
        kernel_meta.append(meta)
    lines.append("    halt")

    name = f"fuzz-{seed:06d}-{chosen}"
    source = "\n".join(lines) + "\n"
    program = assemble(source, data=data.image, name=name)
    return FuzzWorkload(
        name=name,
        seed=seed,
        shape=chosen,
        source=source,
        program=program,
        hierarchy=hierarchy,
        metadata={"kernels": kernel_meta},
    )
