"""Greedy failure shrinking and corpus persistence.

When the oracle flags a generated program, the raw reproducer is
usually dozens of instructions across several kernels; the bug almost
always lives in a handful of them.  :func:`shrink` minimizes the
failing *source* by whole-line deletion — delta-debugging style: try
removing large chunks first, halve the chunk size when nothing in a
pass can be removed, stop at single lines.  A candidate deletion is
kept only if the program still assembles and the oracle still reports
at least one of the *original* (family, check) failures, so shrinking
can never wander onto a different bug (e.g. a deletion that breaks
loop termination introduces new failures but does not preserve the
original one, and is rejected).  Families listed in
:data:`FAMILY_LEVEL_IDENTITY` match at family granularity instead,
because their check names track the first observable divergence,
which reductions can legitimately move.

Because the generator emits every label on its own line, deleting an
instruction line never orphans a branch target; deleting a *label*
line that is still referenced simply fails assembly and is rejected
by the same predicate.

Minimized reproducers are persisted to a ``corpus/`` directory as
self-contained JSON — source, data image, hierarchy, seed, and the
failing checks — so a finding replays without the generator:
``python -m repro fuzz --replay corpus/<name>.json``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.fuzz.generator import FuzzWorkload
from repro.fuzz.oracle import OracleReport, run_oracle
from repro.isa.assembler import AssemblerError, assemble
from repro.isa.program import DataImage, ProgramError
from repro.memory.cache import CacheConfig
from repro.memory.hierarchy import HierarchyConfig

#: Families whose check names encode *where* a divergence was first
#: observed rather than *which* invariant broke.  ``timing_parity``
#: names its checks after the pinned contract order (registers before
#: counts before cycles), so a reduction that removes the instructions
#: responsible for, say, a register divergence can legitimately leave
#: the same underlying model bug observable only as a count or cycle
#: divergence.  Failure identity for these families is therefore
#: matched at family granularity; every other family keeps the strict
#: ``(family, check)`` match.
FAMILY_LEVEL_IDENTITY = frozenset({"timing_parity"})


def _preserves_failure(
    found: set, target: set
) -> bool:
    """Does ``found`` keep at least one of ``target``'s failures?"""
    if found & target:
        return True
    relaxed = {
        family
        for family, _check in target
        if family in FAMILY_LEVEL_IDENTITY
    }
    return any(family in relaxed for family, _check in found)


def _reassemble(workload: FuzzWorkload, lines: Sequence[str]) -> FuzzWorkload:
    """The same workload with its source replaced by ``lines``."""
    source = "\n".join(lines) + "\n"
    program = assemble(source, data=workload.program.data, name=workload.name)
    return FuzzWorkload(
        name=workload.name,
        seed=workload.seed,
        shape=workload.shape,
        source=source,
        program=program,
        hierarchy=workload.hierarchy,
        metadata=dict(workload.metadata),
    )


@dataclass
class ShrinkResult:
    """Outcome of one shrink run."""

    workload: FuzzWorkload
    report: OracleReport
    failed_checks: List[Tuple[str, str]]
    original_lines: int
    shrunk_lines: int
    evaluations: int

    @property
    def reduced(self) -> bool:
        return self.shrunk_lines < self.original_lines


def shrink(
    workload: FuzzWorkload,
    report: Optional[OracleReport] = None,
    max_instructions: int = 400_000,
    budget: int = 150,
) -> ShrinkResult:
    """Minimize a failing workload while preserving its failure.

    Args:
        workload: the failing workload.
        report: its oracle report; recomputed when ``None``.
        max_instructions: per-run instruction cap for oracle re-checks.
        budget: maximum number of oracle evaluations to spend.

    Raises:
        ValueError: if the oracle finds nothing to preserve.
    """
    if report is None:
        report = run_oracle(workload, max_instructions=max_instructions)
    target = report.failed_checks()
    if not target:
        raise ValueError(f"{workload.name}: oracle reports no failure to shrink")

    lines = [line for line in workload.source.splitlines() if line.strip()]
    evaluations = 0
    best_report = report

    def still_fails(candidate: List[str]) -> Optional[OracleReport]:
        nonlocal evaluations
        evaluations += 1
        try:
            reduced = _reassemble(workload, candidate)
        except (AssemblerError, ProgramError, ValueError):
            return None
        result = run_oracle(reduced, max_instructions=max_instructions)
        if _preserves_failure(result.failed_checks(), target):
            return result
        return None

    chunk = max(len(lines) // 2, 1)
    while chunk >= 1 and evaluations < budget:
        removed_any = False
        start = 0
        while start < len(lines) and evaluations < budget:
            candidate = lines[:start] + lines[start + chunk:]
            if not candidate:
                start += chunk
                continue
            result = still_fails(candidate)
            if result is not None:
                lines = candidate
                best_report = result
                removed_any = True
                # Re-test the same position: the next chunk slid in.
            else:
                start += chunk
        if not removed_any:
            if chunk == 1:
                break  # single-line fixpoint: nothing left to remove
            chunk = max(chunk // 2, 1)
        elif chunk > len(lines):
            chunk = max(len(lines) // 2, 1)
        # else: repeat the pass at the same granularity — a deletion
        # may have unblocked earlier positions (e.g. a label becomes
        # deletable once its last referencing branch is gone).

    final = _reassemble(workload, lines)
    return ShrinkResult(
        workload=final,
        report=best_report,
        failed_checks=sorted(target),
        original_lines=len(
            [l for l in workload.source.splitlines() if l.strip()]
        ),
        shrunk_lines=len(lines),
        evaluations=evaluations,
    )


# ---------------------------------------------------------------------------
# Corpus persistence


def _hierarchy_to_dict(hierarchy: HierarchyConfig) -> dict:
    def cache(config: CacheConfig) -> dict:
        return {
            "name": config.name,
            "size_bytes": config.size_bytes,
            "line_bytes": config.line_bytes,
            "assoc": config.assoc,
            "hit_latency": config.hit_latency,
        }

    return {
        "l1": cache(hierarchy.l1),
        "l2": cache(hierarchy.l2),
        "mem_latency": hierarchy.mem_latency,
        "mshr_entries": hierarchy.mshr_entries,
        "backside_bus_bytes": hierarchy.backside_bus_bytes,
        "backside_bus_divisor": hierarchy.backside_bus_divisor,
        "memory_bus_bytes": hierarchy.memory_bus_bytes,
        "memory_bus_divisor": hierarchy.memory_bus_divisor,
    }


def _hierarchy_from_dict(payload: dict) -> HierarchyConfig:
    return HierarchyConfig(
        l1=CacheConfig(**payload["l1"]),
        l2=CacheConfig(**payload["l2"]),
        mem_latency=payload["mem_latency"],
        mshr_entries=payload["mshr_entries"],
        backside_bus_bytes=payload["backside_bus_bytes"],
        backside_bus_divisor=payload["backside_bus_divisor"],
        memory_bus_bytes=payload["memory_bus_bytes"],
        memory_bus_divisor=payload["memory_bus_divisor"],
    )


def write_reproducer(result: ShrinkResult, corpus_dir) -> Path:
    """Persist a minimized reproducer; returns the file written."""
    workload = result.workload
    payload = {
        "format": 1,
        "name": workload.name,
        "seed": workload.seed,
        "shape": workload.shape,
        "failed_checks": [list(pair) for pair in result.failed_checks],
        "failures": [f.to_dict() for f in result.report.failures],
        "source": workload.source,
        "data_words": [
            [addr, value]
            for addr, value in sorted(workload.program.data.words.items())
        ],
        "hierarchy": _hierarchy_to_dict(workload.hierarchy),
        "shrink": {
            "original_lines": result.original_lines,
            "shrunk_lines": result.shrunk_lines,
            "evaluations": result.evaluations,
        },
    }
    directory = Path(corpus_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{workload.name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_reproducer(path) -> FuzzWorkload:
    """Rebuild a replayable workload from a corpus file."""
    payload = json.loads(Path(path).read_text())
    image = DataImage()
    for addr, value in payload["data_words"]:
        image.store_word(addr, value)
    program = assemble(payload["source"], data=image, name=payload["name"])
    return FuzzWorkload(
        name=payload["name"],
        seed=payload["seed"],
        shape=payload["shape"],
        source=payload["source"],
        program=program,
        hierarchy=_hierarchy_from_dict(payload["hierarchy"]),
        metadata={"replay": True, "failed_checks": payload["failed_checks"]},
    )
