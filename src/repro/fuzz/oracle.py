"""The differential oracle: end-to-end cross-checks for one workload.

Runs a (generated or hand-written) workload through the full pipeline
and applies seven check families, each named by a stable identifier so
shrinking can match "the same failure" across candidate reductions:

``engine_equivalence``
    The compiled basic-block engine and the reference interpreter must
    be bit-identical: the packed functional trace and every statistic,
    and the timing simulator's stats in baseline and pre-execution
    modes.

``functional_vs_timing``
    The two independent execution models must commit the same
    architectural state: identical dynamic instruction/load/store/
    branch counts, identical final registers and memory, in baseline
    *and* pre-execution mode (pre-execution is purely speculative — it
    must never change architectural results), plus identical L2 miss
    counts for the unassisted run (same cache model, same stream).

``pthread_verify``
    Every selected p-thread must pass the static PT001–PT006
    invariant verifier (the ``REPRO_VERIFY`` checks) with no
    error-severity findings.

``model_invariants``
    Slice-tree structure (parent ``DCpt-cm`` = sum of children plus
    terminations) and the advantage model's arithmetic
    (``ADVagg = LTagg − OHagg``, ``LTagg = DCpt-cm·LT``,
    ``OHagg = DCtrig·OH``, ``OH = SIZEpt·charge``) recomputed against
    :mod:`repro.model.advantage`, and the aggregate prediction's
    consistency with its per-p-thread parts.

``memory_sanity``
    Cache/MSHR accounting sanity on both simulators: the program
    halts, per-level load counts add up, L2 misses never exceed L1
    misses, coverage classifications never exceed the miss count, IPC
    respects the sequencing-bandwidth bound, and p-thread counters are
    zero when no p-threads run.

``codegen_transval``
    Static translation validation (:mod:`repro.analysis.transval`) of
    every compiled variant the dynamic families exercised: all four
    functional (tracing, caching) shapes, the baseline timing shape,
    and the pre-execution timing shape with the selection's trigger
    PCs.  No simulation runs — the generated block source is proven
    equivalent to the interpreter semantics symbolically, so this
    family is cheap per seed and catches codegen bugs on paths the
    dynamic inputs never reached.

``timing_parity``
    The discrete-event timing model
    (:mod:`repro.timing.eventsim`) against the trace-driven one under
    the pinned cross-model contract of
    :mod:`repro.validation.parity`: identical committed architectural
    state, instruction/launch/drop counts, and per-level miss counts,
    with cycles/IPC inside the documented tolerance band, in baseline
    and pre-execution modes.  Check names are the contract's pinned
    check names prefixed by the mode (``baseline_registers``,
    ``preexec_pthread_launches``, ...); the diverging values live in
    the message so reduced reproducers keep a stable identity.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.analysis.report import Severity
from repro.analysis.verifier import verify_selection
from repro.engine.compiler import (
    ENGINE_COMPILED,
    ENGINE_INTERP,
    ENGINE_TIERED,
)
from repro.engine.functional import FunctionalResult, FunctionalSimulator
from repro.fuzz.generator import FuzzWorkload
from repro.model.params import ModelParams, SelectionConstraints
from repro.selection.program_selector import ProgramSelection, select_pthreads
from repro.timing.config import BASELINE, PRE_EXECUTION, MachineConfig
from repro.timing.core import TimingSimulator
from repro.timing.stats import SimStats

#: The seven check families, in the order they run.
CHECK_FAMILIES: Tuple[str, ...] = (
    "engine_equivalence",
    "functional_vs_timing",
    "pthread_verify",
    "model_invariants",
    "memory_sanity",
    "codegen_transval",
    "timing_parity",
)

_ENGINES = (ENGINE_INTERP, ENGINE_COMPILED, ENGINE_TIERED)


@dataclass(frozen=True)
class CheckFailure:
    """One oracle finding: a named check within a family, with detail."""

    family: str
    check: str
    message: str

    def render(self) -> str:
        return f"{self.family}/{self.check}: {self.message}"

    def to_dict(self) -> dict:
        return {
            "family": self.family,
            "check": self.check,
            "message": self.message,
        }


@dataclass
class OracleReport:
    """Everything one oracle run over one workload produced."""

    name: str
    seed: int
    shape: str
    families_run: List[str] = field(default_factory=list)
    failures: List[CheckFailure] = field(default_factory=list)
    stats: Dict[str, Any] = field(default_factory=dict)
    #: Wall-clock seconds spent in each family that ran (checks plus
    #: the simulations it triggered), for campaign overhead accounting.
    #: Deliberately excluded from :meth:`to_dict`: verdicts are a pure
    #: function of the seed, wall-clock is not.
    family_seconds: Dict[str, float] = field(default_factory=dict)
    #: True when a soft deadline truncated this run: later families were
    #: skipped entirely, but every check that did run is complete.
    budget_exceeded: bool = False

    @property
    def ok(self) -> bool:
        return not self.failures

    def failed_checks(self) -> Set[Tuple[str, str]]:
        """The (family, check) identities of every failure."""
        return {(f.family, f.check) for f in self.failures}

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "shape": self.shape,
            "ok": self.ok,
            "families_run": list(self.families_run),
            "failures": [f.to_dict() for f in self.failures],
            "stats": dict(self.stats),
            "budget_exceeded": self.budget_exceeded,
        }

    def render(self) -> str:
        verdict = "ok" if self.ok else f"{len(self.failures)} failure(s)"
        if self.budget_exceeded:
            verdict += (
                f" (budget exceeded after "
                f"{len(self.families_run)} family(ies))"
            )
        lines = [f"{self.name}: {verdict}"]
        lines.extend("  " + f.render() for f in self.failures)
        return "\n".join(lines)


class _Checker:
    """Accumulates failures for one family at a time."""

    def __init__(self, report: OracleReport) -> None:
        self.report = report
        self.family = ""
        self._family_started: Optional[float] = None

    def start(self, family: str) -> None:
        self.finish()
        self.family = family
        self._family_started = time.monotonic()
        self.report.families_run.append(family)

    def finish(self) -> None:
        """Close the running family's wall-clock accounting, if any."""
        if self._family_started is not None:
            self.report.family_seconds[self.family] = round(
                time.monotonic() - self._family_started, 6
            )
            self._family_started = None

    def fail(self, check: str, message: str) -> None:
        self.report.failures.append(
            CheckFailure(self.family, check, message)
        )

    def expect(self, condition: bool, check: str, message: str) -> None:
        if not condition:
            self.fail(check, message)

    def expect_eq(self, a, b, check: str, label: str) -> None:
        if a != b:
            self.fail(check, f"{label}: {a!r} != {b!r}")

    def expect_close(self, a: float, b: float, check: str, label: str) -> None:
        if not math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9):
            self.fail(check, f"{label}: {a!r} !~ {b!r}")


def _dict_diff(a: dict, b: dict) -> str:
    """Compact rendering of the keys on which two dicts disagree."""
    keys = [k for k in a if a.get(k) != b.get(k)]
    keys += [k for k in b if k not in a]
    parts = []
    for key in keys[:4]:
        av, bv = a.get(key), b.get(key)
        av = repr(av)[:60]
        bv = repr(bv)[:60]
        parts.append(f"{key}: {av} != {bv}")
    if len(keys) > 4:
        parts.append(f"... {len(keys) - 4} more key(s)")
    return "; ".join(parts) or "(dicts equal?)"


def _memory_words(memory) -> Dict[int, int]:
    """Non-zero committed memory words, for state comparisons."""
    return {
        addr: value
        for addr, value in memory.snapshot().items()
        if value != 0
    }


@dataclass
class _TimingRun:
    stats: SimStats
    registers: List[int]
    memory_words: Dict[int, int]


def _run_timing(
    workload: FuzzWorkload,
    mode,
    engine: str,
    pthreads,
    machine: MachineConfig,
    max_instructions: int,
    checker: _Checker,
    label: str,
) -> _TimingRun:
    sim = TimingSimulator(
        workload.program,
        workload.hierarchy,
        machine=machine,
        pthreads=pthreads,
        engine=engine,
    )
    stats = sim.run(mode, max_instructions=max_instructions)
    if sim.last_engine != engine:
        checker.fail(
            "engine_availability",
            f"{label}: requested {engine}, ran {sim.last_engine}",
        )
    return _TimingRun(
        stats=stats,
        registers=list(sim.last_registers),
        memory_words=_memory_words(sim.last_memory),
    )


def run_oracle(
    workload: FuzzWorkload,
    max_instructions: int = 400_000,
    machine: Optional[MachineConfig] = None,
    deadline: Optional[float] = None,
) -> OracleReport:
    """Run every check family over one workload.

    Deterministic: the same workload (same seed) always yields the
    same verdicts.  All five families run even when an early family
    fails, so a report shows the full blast radius of a bug.

    ``deadline`` is an absolute ``time.monotonic()`` value acting as a
    *soft* per-run budget: it is consulted only between simulation
    stages and check families, never inside one, so a truncated run
    (``budget_exceeded=True``) skips later families entirely while
    every check that did run is complete and reproducible.
    """
    machine = machine or MachineConfig()
    report = OracleReport(
        name=workload.name, seed=workload.seed, shape=workload.shape
    )
    check = _Checker(report)
    program, hierarchy = workload.program, workload.hierarchy

    def expired() -> bool:
        if deadline is not None and time.monotonic() >= deadline:
            check.finish()
            report.budget_exceeded = True
            return True
        return False

    # ---- family 1: engine equivalence --------------------------------
    check.start("engine_equivalence")
    functional: Dict[str, FunctionalResult] = {}
    for engine in _ENGINES:
        sim = FunctionalSimulator(program, hierarchy, engine=engine)
        functional[engine] = sim.run(max_instructions=max_instructions)
        check.expect(
            sim.last_engine == engine,
            "engine_availability",
            f"functional: requested {engine}, ran {sim.last_engine}",
        )
    func = functional[ENGINE_INTERP]
    func_dicts = {e: functional[e].to_dict() for e in _ENGINES}
    for engine in _ENGINES[1:]:
        check.expect(
            func_dicts[ENGINE_INTERP] == func_dicts[engine],
            f"functional_{engine}",
            _dict_diff(func_dicts[ENGINE_INTERP], func_dicts[engine]),
        )
    report.stats = {
        "instructions": func.instructions,
        "loads": func.loads,
        "stores": func.stores,
        "branches": func.branches,
        "l1_misses": func.l1_misses,
        "l2_misses": func.l2_misses,
    }
    if expired():
        return report

    base: Dict[str, _TimingRun] = {}
    for engine in _ENGINES:
        base[engine] = _run_timing(
            workload, BASELINE, engine, None, machine, max_instructions,
            check, "timing baseline",
        )
    for engine in _ENGINES[1:]:
        check.expect(
            base[ENGINE_INTERP].stats.to_dict()
            == base[engine].stats.to_dict(),
            f"timing_baseline_{engine}",
            _dict_diff(
                base[ENGINE_INTERP].stats.to_dict(),
                base[engine].stats.to_dict(),
            ),
        )
    if expired():
        return report

    # Selection from the reference (interpreter) trace.
    params = ModelParams(
        bw_seq=machine.bw_seq,
        unassisted_ipc=max(base[ENGINE_INTERP].stats.ipc, 0.05),
        mem_latency=hierarchy.mem_latency,
        load_latency=hierarchy.l1.hit_latency,
    )
    constraints = SelectionConstraints()
    selection = select_pthreads(program, func.trace, params, constraints)
    report.stats["static_pthreads"] = len(selection.pthreads)
    if expired():
        return report

    pre: Dict[str, _TimingRun] = {}
    for engine in _ENGINES:
        pre[engine] = _run_timing(
            workload, PRE_EXECUTION, engine, selection.pthreads, machine,
            max_instructions, check, "timing pre-execution",
        )
    for engine in _ENGINES[1:]:
        check.expect(
            pre[ENGINE_INTERP].stats.to_dict()
            == pre[engine].stats.to_dict(),
            f"timing_preexec_{engine}",
            _dict_diff(
                pre[ENGINE_INTERP].stats.to_dict(),
                pre[engine].stats.to_dict(),
            ),
        )
    report.stats["pthread_launches"] = (
        pre[ENGINE_INTERP].stats.pthread_launches
    )
    report.stats["preexec_speedup"] = (
        pre[ENGINE_INTERP].stats.speedup_over(base[ENGINE_INTERP].stats)
        if base[ENGINE_INTERP].stats.ipc > 0
        else 0.0
    )
    if expired():
        return report

    # ---- family 2: functional vs timing committed state --------------
    check.start("functional_vs_timing")
    func_memory = _memory_words(func.memory)
    for label, run in (
        ("baseline", base[ENGINE_INTERP]),
        ("preexec", pre[ENGINE_INTERP]),
    ):
        stats = run.stats
        check.expect_eq(
            stats.instructions, func.instructions,
            f"{label}_instructions", "retired instructions",
        )
        check.expect_eq(stats.loads, func.loads, f"{label}_loads", "loads")
        check.expect_eq(stats.stores, func.stores, f"{label}_stores", "stores")
        check.expect_eq(
            stats.branches, func.branches, f"{label}_branches", "branches"
        )
        check.expect_eq(
            run.registers, func.registers,
            f"{label}_registers", "final register file",
        )
        check.expect(
            run.memory_words == func_memory,
            f"{label}_memory",
            f"final memory differs on "
            f"{len(set(run.memory_words.items()) ^ set(func_memory.items()))}"
            " word(s)",
        )
    # Same cache model, same unassisted reference stream.
    check.expect_eq(
        base[ENGINE_INTERP].stats.l2_misses, func.l2_misses,
        "baseline_l2_misses", "unassisted L2 misses",
    )
    # L1 misses count loads *and* stores in both models (the timing
    # simulator used to drop store misses on the floor).  Timing may
    # forward a load from the store queue instead of accessing the
    # hierarchy, so its count can trail the functional one, but never
    # exceed it while the reference stream is unassisted.
    check.expect(
        base[ENGINE_INTERP].stats.l1_misses <= func.l1_misses,
        "baseline_l1_misses",
        f"timing L1 misses {base[ENGINE_INTERP].stats.l1_misses} > "
        f"functional {func.l1_misses}",
    )

    if expired():
        return report

    # ---- family 3: p-thread invariant verification -------------------
    check.start("pthread_verify")
    diagnostics = verify_selection(program, selection.pthreads, constraints)
    for diagnostic in diagnostics:
        if diagnostic.severity is Severity.ERROR:
            check.fail(diagnostic.code, diagnostic.render())

    if expired():
        return report

    # ---- family 4: slice-tree / advantage-model invariants -----------
    check.start("model_invariants")
    _check_model(check, selection, params)

    if expired():
        return report

    # ---- family 5: cache / MSHR accounting sanity --------------------
    check.start("memory_sanity")
    _check_functional_sanity(check, func)
    _check_stats_sanity(
        check, base[ENGINE_INTERP].stats, machine, "baseline", pthreads=False
    )
    _check_stats_sanity(
        check, pre[ENGINE_INTERP].stats, machine, "preexec", pthreads=True
    )

    if expired():
        return report

    # ---- family 6: static translation validation of codegen ----------
    check.start("codegen_transval")
    _check_codegen_transval(check, workload, machine, selection)

    if expired():
        return report

    # ---- family 7: cross-model timing parity -------------------------
    check.start("timing_parity")
    _check_timing_parity(
        check,
        workload,
        machine,
        selection,
        base[ENGINE_INTERP],
        pre[ENGINE_INTERP],
        max_instructions,
    )

    check.finish()
    return report


def _check_timing_parity(
    check: _Checker,
    workload: FuzzWorkload,
    machine: MachineConfig,
    selection: ProgramSelection,
    base_run: "_TimingRun",
    pre_run: "_TimingRun",
    max_instructions: int,
) -> None:
    """Cross-model parity: event-driven vs trace-driven timing.

    Reuses the trace-driven interpreter runs families 1–2 already
    captured; only the event-driven model runs fresh.  Failure names
    come from the pinned contract order so a reduced reproducer keeps
    the same ``(family, check)`` identity as long as the same kind of
    state diverges — the shrinker additionally matches this family at
    family granularity (see :mod:`repro.fuzz.shrink`) because a
    reduction can legitimately move the first observable divergence
    between checks.
    """
    from repro.timing.eventsim import EventSimulator
    from repro.validation.parity import ParityRun, compare_runs

    def as_parity(stats: SimStats, registers, memory_words) -> ParityRun:
        payload = stats.to_dict()
        payload["ipc"] = stats.ipc
        return ParityRun(
            stats=payload,
            registers=list(registers),
            memory_words=dict(memory_words),
        )

    variants = (
        ("baseline", BASELINE, None, base_run),
        ("preexec", PRE_EXECUTION, selection.pthreads, pre_run),
    )
    for label, mode, pthreads, trace_run in variants:
        event_sim = EventSimulator(
            workload.program,
            workload.hierarchy,
            machine=machine,
            pthreads=pthreads,
            engine=ENGINE_INTERP,
        )
        event_stats = event_sim.run(mode, max_instructions=max_instructions)
        report = compare_runs(
            as_parity(
                trace_run.stats, trace_run.registers, trace_run.memory_words
            ),
            as_parity(
                event_stats,
                event_sim.last_registers,
                _memory_words(event_sim.last_memory),
            ),
            workload=workload.name,
            mode=mode.name,
            engine=str(event_sim.last_engine),
        )
        for pcheck in report.checks:
            if not pcheck.ok:
                check.fail(f"{label}_{pcheck.name}", pcheck.render())


def _check_codegen_transval(
    check: _Checker,
    workload: FuzzWorkload,
    machine: MachineConfig,
    selection: ProgramSelection,
) -> None:
    """Statically validate every compiled variant the oracle exercised."""
    program, hierarchy = workload.program, workload.hierarchy
    fsim = FunctionalSimulator(program, hierarchy)
    for tracing in (False, True):
        for caching in (False, True):
            result = fsim.validate_codegen(tracing, caching)
            _transval_failures(
                check,
                f"functional tracing={int(tracing)} caching={int(caching)}",
                result,
            )
    for pthreads, shape in (
        (None, (False, False, False)),
        (selection.pthreads, (True, True, False)),
    ):
        tsim = TimingSimulator(
            program, hierarchy, machine=machine, pthreads=pthreads
        )
        result = tsim.validate_codegen(*shape)
        launching, stealing, prefetching = shape
        _transval_failures(
            check,
            f"timing launching={int(launching)} stealing={int(stealing)} "
            f"prefetching={int(prefetching)}",
            result,
        )


def _transval_failures(check: _Checker, label: str, result) -> None:
    for diagnostic in result.diagnostics:
        if diagnostic.severity is Severity.ERROR:
            check.fail(diagnostic.code, f"{label}: {diagnostic.render()}")


def _check_model(
    check: _Checker, selection: ProgramSelection, params: ModelParams
) -> None:
    """Slice-tree structure + advantage arithmetic consistency."""
    for load_pc, tree_selection in selection.tree_selections.items():
        tree = tree_selection.tree
        check.expect_eq(
            tree.root.pc, load_pc, "tree_root", "tree root pc"
        )
        try:
            tree.check_invariants()
        except AssertionError as exc:
            check.fail("tree_dcptcm", str(exc))

    charge = params.overhead_per_instruction()
    for pthread in selection.pthreads:
        tag = f"trigger #{pthread.trigger_pc}"
        for score in pthread.components:
            check.expect(
                0.0 <= score.lt <= params.mem_latency,
                "lt_bounds",
                f"{tag}: LT {score.lt} outside [0, {params.mem_latency}]",
            )
            check.expect(
                score.oh >= 0.0, "oh_sign", f"{tag}: OH {score.oh} < 0"
            )
            check.expect_close(
                score.oh, score.size * charge, "oh_formula",
                f"{tag}: OH vs SIZEpt*charge",
            )
            check.expect_close(
                score.lt_agg, score.dc_pt_cm * score.lt, "lt_agg",
                f"{tag}: LTagg vs DCpt-cm*LT",
            )
            check.expect_close(
                score.oh_agg, score.dc_trig * score.oh, "oh_agg",
                f"{tag}: OHagg vs DCtrig*OH",
            )
            check.expect_close(
                score.adv_agg, score.lt_agg - score.oh_agg, "adv_agg",
                f"{tag}: ADVagg vs LTagg-OHagg",
            )
        prediction = pthread.prediction
        check.expect_close(
            prediction.oh_agg,
            prediction.dc_trig * pthread.size * charge,
            "pthread_oh_agg",
            f"{tag}: prediction OHagg vs DCtrig*SIZEpt*charge",
        )
        check.expect(
            prediction.misses_fully_covered <= prediction.misses_covered,
            "pthread_coverage",
            f"{tag}: fully covered {prediction.misses_fully_covered} > "
            f"covered {prediction.misses_covered}",
        )

    prediction = selection.prediction
    pthreads = selection.pthreads
    check.expect_eq(
        prediction.launches,
        sum(p.prediction.dc_trig for p in pthreads),
        "agg_launches", "aggregate launches",
    )
    check.expect_eq(
        prediction.injected_instructions,
        sum(p.prediction.injected_instructions for p in pthreads),
        "agg_injected", "aggregate injected instructions",
    )
    check.expect_close(
        prediction.oh_agg,
        sum(p.prediction.oh_agg for p in pthreads),
        "agg_oh", "aggregate OHagg",
    )
    check.expect_close(
        prediction.lt_agg,
        sum(p.prediction.lt_agg for p in pthreads),
        "agg_lt", "aggregate LTagg",
    )
    check.expect_close(
        prediction.adv_agg,
        prediction.lt_agg - prediction.oh_agg,
        "agg_adv", "aggregate ADVagg",
    )
    check.expect(
        0 <= prediction.misses_fully_covered
        <= prediction.misses_covered
        <= max(prediction.sample_l2_misses, prediction.misses_covered),
        "agg_coverage",
        f"coverage ordering violated: full "
        f"{prediction.misses_fully_covered}, covered "
        f"{prediction.misses_covered}, sample "
        f"{prediction.sample_l2_misses}",
    )
    check.expect(
        prediction.misses_covered <= prediction.sample_l2_misses
        or not prediction.sample_l2_misses,
        "agg_covered_le_misses",
        f"covered {prediction.misses_covered} > sample misses "
        f"{prediction.sample_l2_misses}",
    )


def _check_functional_sanity(
    check: _Checker, func: FunctionalResult
) -> None:
    check.expect(
        func.halted, "halted",
        f"program did not halt within the instruction budget "
        f"({func.instructions} executed)",
    )
    level_counts = func.load_level_counts
    check.expect_eq(
        sum(level_counts.values()), func.loads,
        "level_counts", "per-level load counts vs loads",
    )
    check.expect(
        func.l2_misses <= func.l1_misses,
        "l2_le_l1",
        f"L2 misses {func.l2_misses} > L1 misses {func.l1_misses}",
    )
    check.expect(
        level_counts.get(2, 0) + level_counts.get(3, 0) <= func.l1_misses,
        "load_misses_le_l1",
        f"load L1 misses {level_counts.get(2, 0) + level_counts.get(3, 0)} "
        f"> total L1 misses {func.l1_misses}",
    )
    check.expect(
        level_counts.get(3, 0) <= func.l2_misses,
        "load_misses_le_l2",
        f"memory-level loads {level_counts.get(3, 0)} > L2 misses "
        f"{func.l2_misses}",
    )


def _check_stats_sanity(
    check: _Checker,
    stats: SimStats,
    machine: MachineConfig,
    label: str,
    pthreads: bool,
) -> None:
    check.expect(
        stats.cycles > 0 or not stats.instructions,
        f"{label}_cycles",
        f"{stats.instructions} instructions in {stats.cycles} cycles",
    )
    check.expect(
        stats.instructions <= stats.cycles * machine.bw_seq,
        f"{label}_ipc_bound",
        f"IPC {stats.ipc:.3f} exceeds sequencing width {machine.bw_seq}",
    )
    check.expect(
        stats.l2_misses <= stats.l1_misses,
        f"{label}_l2_le_l1",
        f"L2 misses {stats.l2_misses} > L1 misses {stats.l1_misses}",
    )
    check.expect(
        stats.misses_covered <= stats.l2_misses,
        f"{label}_covered_le_misses",
        f"covered {stats.misses_covered} > L2 misses {stats.l2_misses}",
    )
    check.expect(
        stats.loads + stats.stores + stats.branches <= stats.instructions,
        f"{label}_mix",
        "loads+stores+branches exceed instruction count",
    )
    check.expect(
        stats.mispredictions <= stats.branches,
        f"{label}_mispredicts",
        f"mispredictions {stats.mispredictions} > branches {stats.branches}",
    )
    if pthreads:
        check.expect_eq(
            sum(stats.launches_by_trigger.values()),
            stats.pthread_launches,
            f"{label}_launch_totals",
            "per-trigger launches vs pthread_launches",
        )
        check.expect_eq(
            sum(stats.drops_by_trigger.values()),
            stats.pthread_drops,
            f"{label}_drop_totals",
            "per-trigger drops vs pthread_drops",
        )
        # Every attempt is exactly one launch or one drop, per trigger.
        attempts = {
            pc: stats.launches_by_trigger.get(pc, 0)
            + stats.drops_by_trigger.get(pc, 0)
            for pc in set(stats.launches_by_trigger)
            | set(stats.drops_by_trigger)
        }
        check.expect_eq(
            sum(attempts.values()),
            stats.pthread_launches + stats.pthread_drops,
            f"{label}_attempt_totals",
            "per-trigger attempts (launches+drops) vs totals",
        )
    else:
        check.expect(
            stats.pthread_launches == 0
            and stats.pthread_instructions == 0
            and stats.pthread_l2_misses == 0,
            f"{label}_no_pthreads",
            "p-thread activity recorded in a mode without p-threads",
        )
