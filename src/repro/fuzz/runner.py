"""Fuzz campaign driver behind ``python -m repro fuzz``.

A campaign is a seed range: for each seed it generates a workload,
runs the differential oracle, and (optionally) shrinks any failure
into a corpus reproducer.  Verdicts are a pure function of the seed
list — wall-clock only decides *how many* seeds a time-budgeted
campaign reaches, never what any seed reports.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional

from repro.fuzz.generator import generate
from repro.fuzz.oracle import CHECK_FAMILIES, run_oracle
from repro.fuzz.shrink import shrink, write_reproducer


def run_campaign(
    seeds: int = 25,
    base_seed: int = 0,
    shape: Optional[str] = None,
    budget_seconds: Optional[float] = None,
    do_shrink: bool = False,
    corpus_dir: str = "corpus",
    max_instructions: int = 400_000,
    log: Optional[Callable[[str], None]] = None,
) -> Dict:
    """Run one fuzz campaign; returns the JSON-ready summary.

    Args:
        seeds: number of seeds to try (``base_seed`` ..).
        base_seed: first seed of the range.
        shape: fix every workload to one generator shape, or ``None``
            to let each seed pick.
        budget_seconds: optional wall-clock budget; the campaign stops
            *between* seeds once exceeded (never mid-seed, so each
            finished seed's verdict is complete and reproducible).
        do_shrink: minimize failures and persist reproducers.
        corpus_dir: where reproducers are written.
        max_instructions: per-simulation instruction cap.
        log: optional progress sink (e.g. ``print``).
    """
    emit = log or (lambda message: None)
    start = time.monotonic()
    reports: List[Dict] = []
    reproducers: List[str] = []
    failed = 0
    seeds_run = 0

    for seed in range(base_seed, base_seed + seeds):
        if budget_seconds is not None and seeds_run:
            if time.monotonic() - start >= budget_seconds:
                emit(
                    f"budget exhausted after {seeds_run}/{seeds} seed(s)"
                )
                break
        workload = generate(seed, shape)
        report = run_oracle(workload, max_instructions=max_instructions)
        seeds_run += 1
        reports.append(report.to_dict())
        if report.ok:
            emit(f"{workload.name}: ok")
            continue
        failed += 1
        emit(report.render())
        if do_shrink:
            result = shrink(
                workload, report, max_instructions=max_instructions
            )
            path = write_reproducer(result, corpus_dir)
            reproducers.append(str(path))
            emit(
                f"  shrunk {result.original_lines} -> "
                f"{result.shrunk_lines} line(s) in "
                f"{result.evaluations} oracle run(s): {path}"
            )

    return {
        "base_seed": base_seed,
        "seeds_requested": seeds,
        "seeds_run": seeds_run,
        "shape": shape,
        "check_families": list(CHECK_FAMILIES),
        "max_instructions": max_instructions,
        "ok": seeds_run - failed,
        "failed": failed,
        "reports": reports,
        "reproducers": reproducers,
        "elapsed_seconds": round(time.monotonic() - start, 3),
    }
