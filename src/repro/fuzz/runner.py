"""Fuzz campaign driver behind ``python -m repro fuzz``.

A campaign is a seed range: for each seed it generates a workload,
runs the differential oracle, and (optionally) shrinks any failure
into a corpus reproducer.  Verdicts are a pure function of the seed
list — wall-clock only decides *how many* seeds (and, for the seed
that hits the budget, how many check families) a time-budgeted
campaign reaches; every family that did run reports exactly what an
unbudgeted run would.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional

from repro.fuzz.generator import generate
from repro.fuzz.oracle import CHECK_FAMILIES, run_oracle
from repro.fuzz.shrink import shrink, write_reproducer
from repro.obs import get_tracer


def run_campaign(
    seeds: int = 25,
    base_seed: int = 0,
    shape: Optional[str] = None,
    budget_seconds: Optional[float] = None,
    do_shrink: bool = False,
    corpus_dir: str = "corpus",
    max_instructions: int = 400_000,
    log: Optional[Callable[[str], None]] = None,
) -> Dict:
    """Run one fuzz campaign; returns the JSON-ready summary.

    Args:
        seeds: number of seeds to try (``base_seed`` ..).
        base_seed: first seed of the range.
        shape: fix every workload to one generator shape, or ``None``
            to let each seed pick.
        budget_seconds: optional wall-clock budget.  Checked between
            seeds, and also passed into the oracle as a per-seed soft
            deadline so one pathological seed cannot blow the budget
            unbounded: the oracle stops between check families, marks
            the report ``budget_exceeded``, and the campaign ends.
        do_shrink: minimize failures and persist reproducers.
        corpus_dir: where reproducers are written.
        max_instructions: per-simulation instruction cap.
        log: optional progress sink (e.g. ``print``).
    """
    emit = log or (lambda message: None)
    start = time.monotonic()
    deadline = start + budget_seconds if budget_seconds is not None else None
    tracer = get_tracer()
    reports: List[Dict] = []
    reproducers: List[str] = []
    family_seconds: Dict[str, float] = {}
    failed = 0
    seeds_run = 0
    budget_exceeded = False

    with tracer.span(
        "fuzz", base_seed=base_seed, seeds=seeds, shape=shape or "any"
    ):
        for seed in range(base_seed, base_seed + seeds):
            if deadline is not None and seeds_run:
                if time.monotonic() >= deadline:
                    budget_exceeded = True
                    emit(
                        f"budget exhausted after {seeds_run}/{seeds} seed(s)"
                    )
                    break
            workload = generate(seed, shape)
            with tracer.span("seed", seed=seed, shape=workload.shape):
                report = run_oracle(
                    workload,
                    max_instructions=max_instructions,
                    deadline=deadline,
                )
            seeds_run += 1
            reports.append(report.to_dict())
            for family, seconds in report.family_seconds.items():
                family_seconds[family] = round(
                    family_seconds.get(family, 0.0) + seconds, 6
                )
            if report.budget_exceeded:
                budget_exceeded = True
            if report.ok:
                emit(f"{workload.name}: ok")
            else:
                failed += 1
                emit(report.render())
                if do_shrink:
                    with tracer.span("shrink", seed=seed):
                        result = shrink(
                            workload, report, max_instructions=max_instructions
                        )
                        path = write_reproducer(result, corpus_dir)
                    reproducers.append(str(path))
                    emit(
                        f"  shrunk {result.original_lines} -> "
                        f"{result.shrunk_lines} line(s) in "
                        f"{result.evaluations} oracle run(s): {path}"
                    )
            if report.budget_exceeded:
                emit(
                    f"budget exhausted inside seed {seed} after "
                    f"{len(report.families_run)}/{len(CHECK_FAMILIES)} "
                    "check family(ies)"
                )
                break

    return {
        "base_seed": base_seed,
        "seeds_requested": seeds,
        "seeds_run": seeds_run,
        "shape": shape,
        "check_families": list(CHECK_FAMILIES),
        "max_instructions": max_instructions,
        "ok": seeds_run - failed,
        "failed": failed,
        "reports": reports,
        "reproducers": reproducers,
        "budget_exceeded": budget_exceeded,
        "family_seconds": family_seconds,
        "elapsed_seconds": round(time.monotonic() - start, 3),
    }
