"""Front-end models: branch prediction."""

from repro.frontend.branch_predictor import HybridPredictor

__all__ = ["HybridPredictor"]
