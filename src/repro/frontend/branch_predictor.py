"""Hybrid branch predictor (bimodal + gshare with a chooser) and BTB.

Models the paper's front end: a 6K-entry hybrid predictor with a
2K-entry BTB.  The timing simulator is trace-driven on the correct
path, so the predictor's job is to decide, per dynamic branch, whether
the fetch stream would have been redirected (a misprediction) — the
penalty is applied by the timing core.

The default sizes give 2K entries to each of the three tables
(bimodal, gshare, chooser), i.e. the paper's "6K-entry hybrid".
"""

from __future__ import annotations

from typing import List


class _CounterTable:
    """A table of 2-bit saturating counters."""

    def __init__(self, index_bits: int, initial: int = 1) -> None:
        self.mask = (1 << index_bits) - 1
        self.counters: List[int] = [initial] * (1 << index_bits)

    def predict(self, index: int) -> bool:
        return self.counters[index & self.mask] >= 2

    def update(self, index: int, taken: bool) -> None:
        i = index & self.mask
        value = self.counters[i]
        if taken:
            if value < 3:
                self.counters[i] = value + 1
        elif value > 0:
            self.counters[i] = value - 1


class HybridPredictor:
    """Bimodal + gshare with a chooser, plus a direct-mapped BTB.

    Args:
        bimodal_bits: log2 entries in the bimodal table.
        gshare_bits: log2 entries in the gshare table (and history bits).
        chooser_bits: log2 entries in the chooser table.
        btb_bits: log2 entries in the BTB.
    """

    def __init__(
        self,
        bimodal_bits: int = 11,
        gshare_bits: int = 11,
        chooser_bits: int = 11,
        btb_bits: int = 11,
    ) -> None:
        self.bimodal = _CounterTable(bimodal_bits)
        self.gshare = _CounterTable(gshare_bits)
        # Chooser counter >= 2 means "use gshare".
        self.chooser = _CounterTable(chooser_bits, initial=2)
        self.history = 0
        self.history_mask = (1 << gshare_bits) - 1
        self.btb_mask = (1 << btb_bits) - 1
        self.btb: List[int] = [-1] * (1 << btb_bits)
        self.btb_targets: List[int] = [0] * (1 << btb_bits)
        # statistics
        self.branches = 0
        self.mispredictions = 0
        self.btb_misses = 0

    def predict_and_update(self, pc: int, taken: bool, target: int) -> bool:
        """Run one conditional branch through the predictor.

        Args:
            pc: static PC of the branch.
            taken: actual outcome.
            target: actual taken target PC.

        Returns:
            True if the prediction (direction and, when taken, target)
            was correct.
        """
        self.branches += 1
        gshare_index = pc ^ self.history
        use_gshare = self.chooser.predict(pc)
        bimodal_pred = self.bimodal.predict(pc)
        gshare_pred = self.gshare.predict(gshare_index)
        prediction = gshare_pred if use_gshare else bimodal_pred

        correct = prediction == taken
        if correct and taken:
            correct = self._btb_lookup(pc, target)
        if not correct:
            self.mispredictions += 1

        # Update chooser toward whichever component was right (only when
        # they disagree, per the standard tournament scheme).
        if bimodal_pred != gshare_pred:
            self.chooser.update(pc, gshare_pred == taken)
        self.bimodal.update(pc, taken)
        self.gshare.update(gshare_index, taken)
        self.history = ((self.history << 1) | int(taken)) & self.history_mask
        if taken:
            self._btb_install(pc, target)
        return correct

    def predict_indirect(self, pc: int, target: int) -> bool:
        """Run an indirect jump (``jr``) through the BTB only."""
        self.branches += 1
        correct = self._btb_lookup(pc, target)
        if not correct:
            self.mispredictions += 1
        self._btb_install(pc, target)
        return correct

    def _btb_lookup(self, pc: int, target: int) -> bool:
        i = pc & self.btb_mask
        if self.btb[i] != pc or self.btb_targets[i] != target:
            self.btb_misses += 1
            return False
        return True

    def _btb_install(self, pc: int, target: int) -> None:
        i = pc & self.btb_mask
        self.btb[i] = pc
        self.btb_targets[i] = target

    def misprediction_rate(self) -> float:
        """Mispredictions per dynamic branch."""
        if not self.branches:
            return 0.0
        return self.mispredictions / self.branches
