"""Instruction representation for the repro RISC ISA.

A static :class:`Instruction` is an immutable record: opcode, operands,
and (once a :class:`~repro.isa.program.Program` has laid the code out) a
program counter.  Dataflow queries (``sources`` / ``dest``) are the
interface the slicer and both simulators share.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple, Union

from repro.isa.opcodes import Format, Opcode, OpInfo, opinfo
from repro.isa.registers import register_name

#: A branch/jump target: a label before linking, a PC after.
Target = Union[str, int]


@dataclass(frozen=True)
class Instruction:
    """One static instruction.

    Attributes:
        op: the opcode.
        rd: destination register index, or ``None``.
        rs1: first source register (base register for loads/stores).
        rs2: second source register (stored value for stores).
        imm: immediate operand (memory displacement for loads/stores).
        target: control-flow target (label name or resolved PC).
        pc: program counter, assigned by :class:`Program`; -1 if unplaced.
    """

    op: Opcode
    rd: Optional[int] = None
    rs1: Optional[int] = None
    rs2: Optional[int] = None
    imm: int = 0
    target: Optional[Target] = None
    pc: int = field(default=-1, compare=False)

    @property
    def info(self) -> OpInfo:
        return opinfo(self.op)

    @property
    def is_load(self) -> bool:
        return self.info.is_load

    @property
    def is_store(self) -> bool:
        return self.info.is_store

    @property
    def is_mem(self) -> bool:
        return self.info.is_mem

    @property
    def is_branch(self) -> bool:
        return self.info.is_branch

    @property
    def is_jump(self) -> bool:
        return self.info.is_jump

    @property
    def is_control(self) -> bool:
        return self.info.is_control

    @property
    def is_halt(self) -> bool:
        return self.op is Opcode.HALT

    def sources(self) -> Tuple[int, ...]:
        """Register indices this instruction reads (in operand order)."""
        fmt = self.info.fmt
        if fmt is Format.R or fmt is Format.BRANCH:
            return (self.rs1, self.rs2)  # type: ignore[return-value]
        if fmt in (Format.I, Format.LOAD, Format.JR):
            return (self.rs1,)  # type: ignore[return-value]
        if fmt is Format.STORE:
            return (self.rs1, self.rs2)  # type: ignore[return-value]
        return ()

    def dest(self) -> Optional[int]:
        """Register index this instruction writes, or ``None``."""
        if self.info.writes_register:
            return self.rd
        return None

    def with_pc(self, pc: int) -> "Instruction":
        """Return a copy of this instruction placed at ``pc``."""
        return replace(self, pc=pc)

    def with_target(self, target: Target) -> "Instruction":
        """Return a copy with the control-flow target replaced."""
        return replace(self, target=target)

    def renamed(
        self,
        rd: Optional[int] = None,
        rs1: Optional[int] = None,
        rs2: Optional[int] = None,
    ) -> "Instruction":
        """Return a copy with some register operands substituted.

        Used by the p-thread merger when it must duplicate a shared
        suffix under fresh register names.  ``None`` keeps the original
        operand.
        """
        return replace(
            self,
            rd=self.rd if rd is None else rd,
            rs1=self.rs1 if rs1 is None else rs1,
            rs2=self.rs2 if rs2 is None else rs2,
        )

    def __str__(self) -> str:
        return format_instruction(self)


def format_instruction(inst: Instruction, *, abi: bool = False) -> str:
    """Render ``inst`` in assembly syntax."""

    def reg(idx: Optional[int]) -> str:
        return "?" if idx is None else register_name(idx, abi=abi)

    fmt = inst.info.fmt
    mnem = inst.op.value
    if fmt is Format.R:
        return f"{mnem} {reg(inst.rd)}, {reg(inst.rs1)}, {reg(inst.rs2)}"
    if fmt is Format.I:
        # mov and lui have dedicated two-operand assembly forms.
        if inst.op is Opcode.MOV:
            return f"{mnem} {reg(inst.rd)}, {reg(inst.rs1)}"
        if inst.op is Opcode.LUI:
            return f"{mnem} {reg(inst.rd)}, {inst.imm}"
        return f"{mnem} {reg(inst.rd)}, {reg(inst.rs1)}, {inst.imm}"
    if fmt is Format.LOAD:
        return f"{mnem} {reg(inst.rd)}, {inst.imm}({reg(inst.rs1)})"
    if fmt is Format.STORE:
        return f"{mnem} {reg(inst.rs2)}, {inst.imm}({reg(inst.rs1)})"
    if fmt is Format.BRANCH:
        return f"{mnem} {reg(inst.rs1)}, {reg(inst.rs2)}, {inst.target}"
    if fmt is Format.JUMP:
        return f"{mnem} {inst.target}"
    if fmt is Format.JAL:
        return f"{mnem} {reg(inst.rd)}, {inst.target}"
    if fmt is Format.JR:
        return f"{mnem} {reg(inst.rs1)}"
    return mnem
