"""ISA layer: opcodes, instructions, programs, and the assembler."""

from repro.isa.assembler import AssemblerError, assemble
from repro.isa.instruction import Instruction, format_instruction
from repro.isa.opcodes import Format, MNEMONICS, Opcode, OpInfo, WORD_SIZE, opinfo
from repro.isa.program import DataImage, Program, ProgramError
from repro.isa.registers import (
    ALIASES,
    NUM_REGS,
    ZERO,
    parse_register,
    register_name,
)

__all__ = [
    "ALIASES",
    "AssemblerError",
    "DataImage",
    "Format",
    "Instruction",
    "MNEMONICS",
    "NUM_REGS",
    "OpInfo",
    "Opcode",
    "Program",
    "ProgramError",
    "WORD_SIZE",
    "ZERO",
    "assemble",
    "format_instruction",
    "opinfo",
    "parse_register",
    "register_name",
]
