"""Two-pass textual assembler for the repro RISC ISA.

The assembler accepts the syntax used throughout the paper's figures::

    # comments start with '#' or ';'
    loop:
        lw   t0, 0(a0)          # load
        addi a0, a0, 16
        bne  t0, zero, loop
        halt

Labels end with ``:`` and may share a line with an instruction.  Both
``r<N>`` names and ABI aliases are accepted for registers.  Immediates
may be decimal or hex (``0x...``) and may be negative.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Format, MNEMONICS, Opcode, opinfo
from repro.isa.program import DataImage, Program, ProgramError
from repro.isa.registers import parse_register


class AssemblerError(ProgramError):
    """Raised on syntax errors, with source line information."""

    def __init__(self, message: str, line_no: int, line: str) -> None:
        super().__init__(f"line {line_no}: {message}: {line.strip()!r}")
        self.line_no = line_no
        self.line = line


_LABEL_RE = re.compile(r"^\s*([A-Za-z_][\w.$]*)\s*:\s*(.*)$")
_MEM_OPERAND_RE = re.compile(r"^(-?(?:0x[0-9a-fA-F]+|\d+))\(\s*(\w+)\s*\)$")


def _parse_imm(text: str) -> int:
    text = text.strip()
    try:
        return int(text, 0)
    except ValueError:
        raise ValueError(f"invalid immediate: {text!r}") from None


def _split_operands(rest: str) -> List[str]:
    rest = rest.strip()
    if not rest:
        return []
    return [part.strip() for part in rest.split(",")]


def _strip_comment(line: str) -> str:
    for marker in ("#", ";"):
        pos = line.find(marker)
        if pos >= 0:
            line = line[:pos]
    return line


def parse_line(line: str) -> Tuple[Optional[str], Optional[Instruction]]:
    """Parse one source line into ``(label, instruction)``.

    Either element may be ``None``.  Raises ``ValueError`` on bad syntax
    (callers wrap it with line numbers).
    """
    line = _strip_comment(line)
    label: Optional[str] = None
    match = _LABEL_RE.match(line)
    if match:
        label, line = match.group(1), match.group(2)
    line = line.strip()
    if not line:
        return label, None
    parts = line.split(None, 1)
    mnemonic = parts[0].lower()
    rest = parts[1] if len(parts) > 1 else ""
    if mnemonic not in MNEMONICS:
        raise ValueError(f"unknown mnemonic {mnemonic!r}")
    op = MNEMONICS[mnemonic]
    operands = _split_operands(rest)
    return label, _build_instruction(op, operands)


def _require(count: int, operands: List[str], op: Opcode) -> None:
    if len(operands) != count:
        raise ValueError(
            f"{op.value} expects {count} operand(s), got {len(operands)}"
        )


def _mem_operand(text: str) -> Tuple[int, int]:
    """Parse ``imm(base)`` into ``(imm, base_register)``."""
    match = _MEM_OPERAND_RE.match(text.strip())
    if not match:
        raise ValueError(f"invalid memory operand: {text!r}")
    return _parse_imm(match.group(1)), parse_register(match.group(2))


def _build_instruction(op: Opcode, operands: List[str]) -> Instruction:
    fmt = opinfo(op).fmt
    if fmt is Format.R:
        _require(3, operands, op)
        return Instruction(
            op,
            rd=parse_register(operands[0]),
            rs1=parse_register(operands[1]),
            rs2=parse_register(operands[2]),
        )
    if fmt is Format.I:
        if op is Opcode.MOV:
            _require(2, operands, op)
            return Instruction(
                op,
                rd=parse_register(operands[0]),
                rs1=parse_register(operands[1]),
            )
        if op is Opcode.LUI:
            _require(2, operands, op)
            return Instruction(
                op,
                rd=parse_register(operands[0]),
                rs1=0,
                imm=_parse_imm(operands[1]),
            )
        _require(3, operands, op)
        return Instruction(
            op,
            rd=parse_register(operands[0]),
            rs1=parse_register(operands[1]),
            imm=_parse_imm(operands[2]),
        )
    if fmt is Format.LOAD:
        _require(2, operands, op)
        imm, base = _mem_operand(operands[1])
        return Instruction(op, rd=parse_register(operands[0]), rs1=base, imm=imm)
    if fmt is Format.STORE:
        _require(2, operands, op)
        imm, base = _mem_operand(operands[1])
        return Instruction(op, rs2=parse_register(operands[0]), rs1=base, imm=imm)
    if fmt is Format.BRANCH:
        _require(3, operands, op)
        return Instruction(
            op,
            rs1=parse_register(operands[0]),
            rs2=parse_register(operands[1]),
            target=operands[2],
        )
    if fmt is Format.JUMP:
        _require(1, operands, op)
        return Instruction(op, target=operands[0])
    if fmt is Format.JAL:
        _require(2, operands, op)
        return Instruction(op, rd=parse_register(operands[0]), target=operands[1])
    if fmt is Format.JR:
        _require(1, operands, op)
        return Instruction(op, rs1=parse_register(operands[0]))
    _require(0, operands, op)
    return Instruction(op)


def assemble(
    source: str,
    data: Optional[DataImage] = None,
    name: str = "program",
) -> Program:
    """Assemble ``source`` text into a :class:`Program`.

    Args:
        source: assembly text.
        data: optional initial data image to attach.
        name: program name for reporting.

    Raises:
        AssemblerError: on any syntax or label error, annotated with the
            offending source line.
    """
    instructions: List[Instruction] = []
    labels: Dict[str, int] = {}
    for line_no, line in enumerate(source.splitlines(), start=1):
        try:
            label, inst = parse_line(line)
        except ValueError as exc:
            raise AssemblerError(str(exc), line_no, line) from None
        if label is not None:
            if label in labels:
                raise AssemblerError(f"duplicate label {label!r}", line_no, line)
            labels[label] = len(instructions)
        if inst is not None:
            instructions.append(inst)
    for label, index in labels.items():
        if index >= len(instructions):
            # A trailing label with no instruction after it: point it at
            # the final instruction so jumps to an "end" label work.
            labels[label] = len(instructions) - 1
    return Program(instructions, labels=labels, data=data, name=name)
