"""Two-pass textual assembler for the repro RISC ISA.

The assembler accepts the syntax used throughout the paper's figures::

    # comments start with '#' or ';'
    loop:
        lw   t0, 0(a0)          # load
        addi a0, a0, 16
        bne  t0, zero, loop
        halt

Labels end with ``:`` and may share a line with an instruction.  Both
``r<N>`` names and ABI aliases are accepted for registers.  Immediates
may be decimal or hex (``0x...``) and may be negative.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Format, MNEMONICS, Opcode, opinfo
from repro.isa.program import DataImage, Program, ProgramError
from repro.isa.registers import parse_register


class AssemblerError(ProgramError):
    """Raised on syntax errors, with source line/column information."""

    def __init__(
        self,
        message: str,
        line_no: int,
        line: str,
        column: Optional[int] = None,
    ) -> None:
        where = (
            f"line {line_no}" if column is None else f"line {line_no}:{column}"
        )
        super().__init__(f"{where}: {message}: {line.strip()!r}")
        self.line_no = line_no
        self.line = line
        self.column = column


class OperandError(ValueError):
    """A bad operand, with its 1-based column in the source line.

    Raised by the operand parsers so :func:`assemble` (and the linter)
    can report *where* in the line the operand sits, not just which
    line failed.
    """

    def __init__(self, message: str, column: Optional[int] = None) -> None:
        super().__init__(message)
        self.column = column


_LABEL_RE = re.compile(r"^\s*([A-Za-z_][\w.$]*)\s*:\s*(.*)$")
_MEM_OPERAND_RE = re.compile(r"^(-?(?:0x[0-9a-fA-F]+|\d+))\(\s*(\w+)\s*\)$")


def _parse_imm(text: str, column: Optional[int] = None) -> int:
    text = text.strip()
    try:
        return int(text, 0)
    except ValueError:
        raise OperandError(
            f"invalid immediate: {text!r}", column=column
        ) from None


#: One operand: its text plus its 1-based column in the source line.
Operand = Tuple[str, Optional[int]]


def _split_operands(rest: str, offset: int = 0) -> List[Operand]:
    """Split a comma-separated operand list, tracking source columns.

    ``offset`` is the 0-based position of ``rest`` within the original
    source line; the returned columns are 1-based within that line.
    """
    if not rest.strip():
        return []
    operands: List[Operand] = []
    cursor = 0
    for part in rest.split(","):
        stripped = part.strip()
        leading = len(part) - len(part.lstrip())
        operands.append((stripped, offset + cursor + leading + 1))
        cursor += len(part) + 1  # consumed text plus the comma
    return operands


def _strip_comment(line: str) -> str:
    for marker in ("#", ";"):
        pos = line.find(marker)
        if pos >= 0:
            line = line[:pos]
    return line


def parse_line(line: str) -> Tuple[Optional[str], Optional[Instruction]]:
    """Parse one source line into ``(label, instruction)``.

    Either element may be ``None``.  Raises ``ValueError`` — usually
    the positioned :class:`OperandError` subclass — on bad syntax
    (callers wrap it with line numbers).
    """
    line = _strip_comment(line)
    label: Optional[str] = None
    offset = 0  # 0-based position of the instruction text in `line`
    match = _LABEL_RE.match(line)
    if match:
        label, offset, line = match.group(1), match.start(2), match.group(2)
    offset += len(line) - len(line.lstrip())
    line = line.strip()
    if not line:
        return label, None
    parts = line.split(None, 1)
    mnemonic = parts[0].lower()
    if len(parts) > 1:
        rest = parts[1]
        rest_offset = offset + line.find(rest, len(parts[0]))
    else:
        rest, rest_offset = "", offset
    if mnemonic not in MNEMONICS:
        raise OperandError(
            f"unknown mnemonic {mnemonic!r}", column=offset + 1
        )
    op = MNEMONICS[mnemonic]
    operands = _split_operands(rest, rest_offset)
    return label, _build_instruction(op, operands)


def _require(count: int, operands: List[Operand], op: Opcode) -> None:
    if len(operands) != count:
        # Point at the first superfluous operand when there is one;
        # a missing operand is a line-level complaint.
        column = operands[count][1] if len(operands) > count else None
        raise OperandError(
            f"{op.value} expects {count} operand(s), got {len(operands)}",
            column=column,
        )


def _reg(operand: Operand) -> int:
    text, column = operand
    try:
        return parse_register(text)
    except ValueError as exc:
        raise OperandError(str(exc), column=column) from None


def _imm(operand: Operand) -> int:
    return _parse_imm(operand[0], operand[1])


def _mem_operand(operand: Operand) -> Tuple[int, int]:
    """Parse ``imm(base)`` into ``(imm, base_register)``."""
    text, column = operand
    match = _MEM_OPERAND_RE.match(text.strip())
    if not match:
        raise OperandError(
            f"invalid memory operand: {text!r}", column=column
        )
    try:
        return _parse_imm(match.group(1)), parse_register(match.group(2))
    except ValueError as exc:
        raise OperandError(str(exc), column=column) from None


def _build_instruction(op: Opcode, operands: List[Operand]) -> Instruction:
    fmt = opinfo(op).fmt
    if fmt is Format.R:
        _require(3, operands, op)
        return Instruction(
            op,
            rd=_reg(operands[0]),
            rs1=_reg(operands[1]),
            rs2=_reg(operands[2]),
        )
    if fmt is Format.I:
        if op is Opcode.MOV:
            _require(2, operands, op)
            return Instruction(
                op,
                rd=_reg(operands[0]),
                rs1=_reg(operands[1]),
            )
        if op is Opcode.LUI:
            _require(2, operands, op)
            return Instruction(
                op,
                rd=_reg(operands[0]),
                rs1=0,
                imm=_imm(operands[1]),
            )
        _require(3, operands, op)
        return Instruction(
            op,
            rd=_reg(operands[0]),
            rs1=_reg(operands[1]),
            imm=_imm(operands[2]),
        )
    if fmt is Format.LOAD:
        _require(2, operands, op)
        imm, base = _mem_operand(operands[1])
        return Instruction(op, rd=_reg(operands[0]), rs1=base, imm=imm)
    if fmt is Format.STORE:
        _require(2, operands, op)
        imm, base = _mem_operand(operands[1])
        return Instruction(op, rs2=_reg(operands[0]), rs1=base, imm=imm)
    if fmt is Format.BRANCH:
        _require(3, operands, op)
        return Instruction(
            op,
            rs1=_reg(operands[0]),
            rs2=_reg(operands[1]),
            target=operands[2][0],
        )
    if fmt is Format.JUMP:
        _require(1, operands, op)
        return Instruction(op, target=operands[0][0])
    if fmt is Format.JAL:
        _require(2, operands, op)
        return Instruction(op, rd=_reg(operands[0]), target=operands[1][0])
    if fmt is Format.JR:
        _require(1, operands, op)
        return Instruction(op, rs1=_reg(operands[0]))
    _require(0, operands, op)
    return Instruction(op)


def assemble(
    source: str,
    data: Optional[DataImage] = None,
    name: str = "program",
) -> Program:
    """Assemble ``source`` text into a :class:`Program`.

    Args:
        source: assembly text.
        data: optional initial data image to attach.
        name: program name for reporting.

    Raises:
        AssemblerError: on any syntax or label error, annotated with the
            offending source line.
    """
    instructions: List[Instruction] = []
    labels: Dict[str, int] = {}
    for line_no, line in enumerate(source.splitlines(), start=1):
        try:
            label, inst = parse_line(line)
        except ValueError as exc:
            raise AssemblerError(
                str(exc),
                line_no,
                line,
                column=getattr(exc, "column", None),
            ) from None
        if label is not None:
            if label in labels:
                raise AssemblerError(f"duplicate label {label!r}", line_no, line)
            labels[label] = len(instructions)
        if inst is not None:
            instructions.append(inst)
    for label, index in labels.items():
        if index >= len(instructions):
            # A trailing label with no instruction after it: point it at
            # the final instruction so jumps to an "end" label work.
            labels[label] = len(instructions) - 1
    return Program(instructions, labels=labels, data=data, name=name)
