"""Program container: placed instructions, labels, and a data image.

A :class:`Program` is the unit both simulators consume: a list of
instructions with resolved PCs and branch targets, plus a
:class:`DataImage` describing the initial contents of data memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.isa.instruction import Instruction
from repro.isa.opcodes import WORD_SIZE


class ProgramError(Exception):
    """Raised for malformed programs (unknown labels, bad PCs, ...)."""


@dataclass
class DataImage:
    """Initial data memory contents, word-granular and sparse.

    Addresses are byte addresses; values are stored per word.  The image
    also tracks named regions so workloads can report where their data
    structures live (useful in examples and debugging output).
    """

    words: Dict[int, int] = field(default_factory=dict)
    regions: Dict[str, range] = field(default_factory=dict)

    def store_word(self, addr: int, value: int) -> None:
        """Set the word at byte address ``addr`` (must be word-aligned)."""
        if addr % WORD_SIZE:
            raise ProgramError(f"unaligned data address: {addr:#x}")
        self.words[addr] = value

    def store_words(self, addr: int, values: Iterable[int]) -> None:
        """Store consecutive words starting at ``addr``."""
        for offset, value in enumerate(values):
            self.store_word(addr + offset * WORD_SIZE, value)

    def load_word(self, addr: int) -> int:
        """Read the word at ``addr`` (0 if never written)."""
        return self.words.get(addr, 0)

    def add_region(self, name: str, start: int, num_words: int) -> range:
        """Record a named region of ``num_words`` words at ``start``."""
        region = range(start, start + num_words * WORD_SIZE, WORD_SIZE)
        self.regions[name] = region
        return region

    def footprint_bytes(self) -> int:
        """Total bytes of initialized data (word-granular)."""
        return len(self.words) * WORD_SIZE


class Program:
    """A linked program: instructions with resolved PCs and targets.

    Args:
        instructions: instructions in layout order.  Their ``pc`` fields
            are (re)assigned here; textual targets are resolved against
            ``labels``.
        labels: label name -> instruction index.
        data: initial data memory image.
        name: human-readable program name.
    """

    def __init__(
        self,
        instructions: Sequence[Instruction],
        labels: Optional[Dict[str, int]] = None,
        data: Optional[DataImage] = None,
        name: str = "program",
    ) -> None:
        labels = dict(labels or {})
        placed: List[Instruction] = []
        for index, inst in enumerate(instructions):
            target = inst.target
            if isinstance(target, str):
                if target not in labels:
                    raise ProgramError(f"undefined label: {target!r}")
                inst = inst.with_target(labels[target])
            placed.append(inst.with_pc(index))
        if not placed:
            raise ProgramError("empty program")
        for inst in placed:
            if inst.is_control and inst.target is not None:
                if not 0 <= int(inst.target) < len(placed):
                    raise ProgramError(
                        f"branch target out of range at pc {inst.pc}: "
                        f"{inst.target}"
                    )
        self.name = name
        self.instructions: List[Instruction] = placed
        self.labels: Dict[str, int] = labels
        self.data: DataImage = data if data is not None else DataImage()

    def __len__(self) -> int:
        return len(self.instructions)

    def __getitem__(self, pc: int) -> Instruction:
        return self.instructions[pc]

    def label_for_pc(self, pc: int) -> Optional[str]:
        """Return a label pointing at ``pc``, if any."""
        for name, index in self.labels.items():
            if index == pc:
                return name
        return None

    def disassemble(self) -> str:
        """Render the whole program as annotated assembly text."""
        lines: List[str] = []
        for inst in self.instructions:
            label = self.label_for_pc(inst.pc)
            if label is not None:
                lines.append(f"{label}:")
            lines.append(f"  #{inst.pc:04d}: {inst}")
        return "\n".join(lines)

    def static_loads(self) -> List[Instruction]:
        """All static load instructions in the program."""
        return [inst for inst in self.instructions if inst.is_load]
