"""Opcode definitions for the repro RISC ISA.

The ISA is a small load/store RISC, deliberately close in spirit to the
Alpha/MIPS-style ISAs used by SimpleScalar in the original paper: all
arithmetic is register-to-register (or register-immediate), memory is
accessed only through explicit word loads and stores, and control flow is
limited to compare-and-branch, direct jumps, and register-indirect jumps.

Everything the p-thread selection framework needs from an ISA is exposed
here declaratively: which operands an opcode reads and writes, whether it
touches memory, and whether it transfers control.  The functional
simulator and the slicer are both driven off :class:`OpInfo` so that the
two can never disagree about dataflow.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, Optional


class Format(enum.Enum):
    """Operand layout of an instruction."""

    #: ``op rd, rs1, rs2`` — three-register ALU.
    R = "R"
    #: ``op rd, rs1, imm`` — register-immediate ALU.
    I = "I"
    #: ``op rd, imm(rs1)`` — word load.
    LOAD = "LOAD"
    #: ``op rs2, imm(rs1)`` — word store (rs2 is the stored value).
    STORE = "STORE"
    #: ``op rs1, rs2, target`` — compare-and-branch.
    BRANCH = "BRANCH"
    #: ``op target`` — direct jump.
    JUMP = "JUMP"
    #: ``op rd, target`` — jump-and-link.
    JAL = "JAL"
    #: ``op rs1`` — register-indirect jump.
    JR = "JR"
    #: ``op`` — no operands (``nop``, ``halt``).
    NONE = "NONE"


class Opcode(enum.Enum):
    """All opcodes in the ISA."""

    # Register-register ALU.
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SLL = "sll"
    SRL = "srl"
    SRA = "sra"
    SLT = "slt"
    SLTU = "sltu"
    # Register-immediate ALU.
    ADDI = "addi"
    ANDI = "andi"
    ORI = "ori"
    XORI = "xori"
    SLLI = "slli"
    SRLI = "srli"
    SRAI = "srai"
    SLTI = "slti"
    LUI = "lui"
    MOV = "mov"  # pseudo-ish register move, kept explicit for the optimizer
    # Memory.
    LW = "lw"
    SW = "sw"
    # Control.
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    BGE = "bge"
    BLE = "ble"
    BGT = "bgt"
    J = "j"
    JAL = "jal"
    JR = "jr"
    # Misc.
    NOP = "nop"
    HALT = "halt"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Opcode.{self.name}"


# Word size of the ISA in bytes.  All loads and stores move one word.
WORD_SIZE = 4

# Mask used to keep register values in a 64-bit two's-complement range so
# that long-running synthetic kernels cannot grow unbounded Python ints.
_MASK64 = (1 << 64) - 1


def _to_signed(value: int) -> int:
    """Wrap ``value`` into signed 64-bit two's-complement range."""
    value &= _MASK64
    if value >= 1 << 63:
        value -= 1 << 64
    return value


def _sra(a: int, b: int) -> int:
    return a >> (b & 63)


def _srl(a: int, b: int) -> int:
    return _to_signed((a & _MASK64) >> (b & 63))


@dataclass(frozen=True)
class OpInfo:
    """Static description of one opcode.

    Attributes:
        fmt: operand layout.
        latency: execution latency in cycles (loads add memory time).
        alu: for ALU opcodes, the value function ``f(a, b) -> result``
            where ``a`` is the rs1 value and ``b`` is the rs2 or
            immediate value.  ``None`` for non-ALU opcodes.
        branch: for branch opcodes, the taken predicate ``f(a, b)``.
    """

    fmt: Format
    latency: int = 1
    alu: Optional[Callable[[int, int], int]] = None
    branch: Optional[Callable[[int, int], bool]] = None

    @property
    def is_load(self) -> bool:
        return self.fmt is Format.LOAD

    @property
    def is_store(self) -> bool:
        return self.fmt is Format.STORE

    @property
    def is_mem(self) -> bool:
        return self.fmt in (Format.LOAD, Format.STORE)

    @property
    def is_branch(self) -> bool:
        return self.fmt is Format.BRANCH

    @property
    def is_jump(self) -> bool:
        return self.fmt in (Format.JUMP, Format.JAL, Format.JR)

    @property
    def is_control(self) -> bool:
        return self.is_branch or self.is_jump

    @property
    def writes_register(self) -> bool:
        return self.fmt in (Format.R, Format.I, Format.LOAD, Format.JAL)


OPINFO: Dict[Opcode, OpInfo] = {
    Opcode.ADD: OpInfo(Format.R, alu=lambda a, b: _to_signed(a + b)),
    Opcode.SUB: OpInfo(Format.R, alu=lambda a, b: _to_signed(a - b)),
    Opcode.MUL: OpInfo(Format.R, latency=3, alu=lambda a, b: _to_signed(a * b)),
    Opcode.AND: OpInfo(Format.R, alu=lambda a, b: _to_signed(a & b)),
    Opcode.OR: OpInfo(Format.R, alu=lambda a, b: _to_signed(a | b)),
    Opcode.XOR: OpInfo(Format.R, alu=lambda a, b: _to_signed(a ^ b)),
    Opcode.SLL: OpInfo(Format.R, alu=lambda a, b: _to_signed(a << (b & 63))),
    Opcode.SRL: OpInfo(Format.R, alu=_srl),
    Opcode.SRA: OpInfo(Format.R, alu=_sra),
    Opcode.SLT: OpInfo(Format.R, alu=lambda a, b: int(a < b)),
    Opcode.SLTU: OpInfo(
        Format.R, alu=lambda a, b: int((a & _MASK64) < (b & _MASK64))
    ),
    Opcode.ADDI: OpInfo(Format.I, alu=lambda a, b: _to_signed(a + b)),
    Opcode.ANDI: OpInfo(Format.I, alu=lambda a, b: _to_signed(a & b)),
    Opcode.ORI: OpInfo(Format.I, alu=lambda a, b: _to_signed(a | b)),
    Opcode.XORI: OpInfo(Format.I, alu=lambda a, b: _to_signed(a ^ b)),
    Opcode.SLLI: OpInfo(Format.I, alu=lambda a, b: _to_signed(a << (b & 63))),
    Opcode.SRLI: OpInfo(Format.I, alu=_srl),
    Opcode.SRAI: OpInfo(Format.I, alu=_sra),
    Opcode.SLTI: OpInfo(Format.I, alu=lambda a, b: int(a < b)),
    Opcode.LUI: OpInfo(Format.I, alu=lambda a, b: _to_signed(b << 16)),
    Opcode.MOV: OpInfo(Format.I, alu=lambda a, b: a),
    Opcode.LW: OpInfo(Format.LOAD, latency=1),
    Opcode.SW: OpInfo(Format.STORE, latency=1),
    Opcode.BEQ: OpInfo(Format.BRANCH, branch=lambda a, b: a == b),
    Opcode.BNE: OpInfo(Format.BRANCH, branch=lambda a, b: a != b),
    Opcode.BLT: OpInfo(Format.BRANCH, branch=lambda a, b: a < b),
    Opcode.BGE: OpInfo(Format.BRANCH, branch=lambda a, b: a >= b),
    Opcode.BLE: OpInfo(Format.BRANCH, branch=lambda a, b: a <= b),
    Opcode.BGT: OpInfo(Format.BRANCH, branch=lambda a, b: a > b),
    Opcode.J: OpInfo(Format.JUMP),
    Opcode.JAL: OpInfo(Format.JAL),
    Opcode.JR: OpInfo(Format.JR),
    Opcode.NOP: OpInfo(Format.NONE),
    Opcode.HALT: OpInfo(Format.NONE),
}

#: Opcodes by mnemonic string, used by the assembler.
MNEMONICS: Dict[str, Opcode] = {op.value: op for op in Opcode}


def opinfo(op: Opcode) -> OpInfo:
    """Return the :class:`OpInfo` for ``op``."""
    return OPINFO[op]
