"""Register file naming for the repro RISC ISA.

There are 32 architectural integer registers.  Register ``r0`` is
hard-wired to zero, as in MIPS/Alpha; writes to it are discarded.  A
conventional ABI-style set of aliases is provided purely for readability
of hand-written workload kernels.
"""

from __future__ import annotations

from typing import Dict

#: Number of architectural registers.
NUM_REGS = 32

#: The hard-wired zero register.
ZERO = 0

#: ABI-style aliases, alias name -> register index.
ALIASES: Dict[str, int] = {
    "zero": 0,
    "ra": 1,  # return address
    "sp": 2,  # stack pointer
    "gp": 3,  # global pointer
    # argument / result registers
    "a0": 4,
    "a1": 5,
    "a2": 6,
    "a3": 7,
    # caller-saved temporaries
    "t0": 8,
    "t1": 9,
    "t2": 10,
    "t3": 11,
    "t4": 12,
    "t5": 13,
    "t6": 14,
    "t7": 15,
    # callee-saved
    "s0": 16,
    "s1": 17,
    "s2": 18,
    "s3": 19,
    "s4": 20,
    "s5": 21,
    "s6": 22,
    "s7": 23,
    # extra temporaries
    "u0": 24,
    "u1": 25,
    "u2": 26,
    "u3": 27,
    "u4": 28,
    "u5": 29,
    "u6": 30,
    "u7": 31,
}

_ALIAS_BY_INDEX: Dict[int, str] = {idx: name for name, idx in ALIASES.items()}


def parse_register(name: str) -> int:
    """Parse a register name (``r7``, ``t0``, ``zero``) to its index.

    Raises:
        ValueError: if the name is not a valid register.
    """
    name = name.strip().lower()
    if name in ALIASES:
        return ALIASES[name]
    if name.startswith("r"):
        try:
            idx = int(name[1:])
        except ValueError:
            raise ValueError(f"invalid register name: {name!r}") from None
        if 0 <= idx < NUM_REGS:
            return idx
    raise ValueError(f"invalid register name: {name!r}")


def register_name(idx: int, *, abi: bool = False) -> str:
    """Return the canonical name for register index ``idx``.

    Indices at or above ``NUM_REGS`` are *virtual* registers — legal
    only inside p-thread bodies (introduced by the merger, backed by
    the p-thread's private renamed context) — and render as ``v<N>``.

    Args:
        idx: register index (architectural or virtual).
        abi: if true, use the ABI alias (``t0``) instead of ``r8``.
    """
    if idx >= NUM_REGS:
        return f"v{idx - NUM_REGS}"
    if idx < 0:
        raise ValueError(f"register index out of range: {idx}")
    if abi:
        return _ALIAS_BY_INDEX[idx]
    return f"r{idx}"
