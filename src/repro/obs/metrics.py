"""Typed metrics registry: counters, gauges, histograms with dotted names.

Metric names are stable, dotted identifiers (``timing.pthread.launches``,
``memory.l2.mshr_occupancy``) that downstream tooling may rely on; the
catalog in :mod:`repro.obs.export` pins name -> type so CI can flag a
metric silently disappearing or changing kind.

Instruments are get-or-create: calling ``registry.counter(name)`` twice
returns the same object, and asking for an existing name with a different
type raises.  Hot simulator loops never touch the registry per event —
subsystems accumulate into their own plain-int fields and *publish* totals
once at end of run, so instrumentation cost stays out of the inner loops.

Thread safety: the serve daemon publishes metrics from concurrent worker
threads into one shared registry, so every mutation that is a
read-modify-write (``value += n``, histogram bucket updates, registry
get-or-create) takes a per-instrument or registry lock.  ``+=`` on a
Python int is *not* atomic — the interpreter can switch threads between
the load and the store — and the unsynchronized get-or-create could
either create two instruments for one name (losing one side's counts) or
raise spurious kind conflicts.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Dict, List, Optional, Sequence


class Counter:
    """Monotonically increasing integer metric."""

    kind = "counter"

    __slots__ = ("name", "help", "value", "_lock")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        with self._lock:
            self.value += amount

    def to_dict(self) -> Dict[str, Any]:
        return {"type": self.kind, "value": self.value}


class Gauge:
    """Point-in-time numeric metric (may go up or down)."""

    kind = "gauge"

    __slots__ = ("name", "help", "value", "_lock")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def add(self, amount: float) -> None:
        with self._lock:
            self.value += float(amount)

    def to_dict(self) -> Dict[str, Any]:
        return {"type": self.kind, "value": self.value}


DEFAULT_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128)


class Histogram:
    """Cumulative-bucket histogram (Prometheus style: counts are per
    upper bound ``le``, plus an implicit +Inf bucket)."""

    kind = "histogram"

    __slots__ = ("name", "help", "bounds", "counts", "count", "total", "_lock")

    def __init__(
        self, name: str, help: str = "", buckets: Optional[Sequence[float]] = None
    ) -> None:
        self.name = name
        self.help = help
        bounds = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        if list(bounds) != sorted(bounds):
            raise ValueError(f"histogram {name}: bucket bounds must be sorted")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # last slot is +Inf
        self.count = 0
        self.total = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float, weight: int = 1) -> None:
        with self._lock:
            self.counts[bisect_left(self.bounds, value)] += weight
            self.count += weight
            self.total += value * weight

    def merge(self, counts: Sequence[int], count: int, total: float) -> None:
        """Fold another histogram's (delta) counts into this one."""
        with self._lock:
            for index, value in enumerate(counts):
                self.counts[index] += int(value)
            self.count += int(count)
            self.total += float(total)

    def to_dict(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "type": self.kind,
                "buckets": list(self.bounds),
                "counts": list(self.counts),
                "count": self.count,
                "sum": self.total,
            }


class MetricsRegistry:
    """Registry of named instruments with snapshot / diff / merge."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}
        # RLock: merge_snapshot calls the get-or-create accessors while
        # already holding the registry lock.
        self._lock = threading.RLock()

    def _get_or_create(self, cls, name: str, help: str, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise TypeError(
                        f"metric {name!r} already registered as {existing.kind}, "
                        f"requested {cls.kind}"
                    )
                return existing
            metric = cls(name, help, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def get(self, name: str):
        with self._lock:
            return self._metrics.get(name)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Plain-data view of every instrument, keyed by metric name."""
        with self._lock:
            items = sorted(self._metrics.items())
        return {name: metric.to_dict() for name, metric in items}

    @staticmethod
    def diff(
        before: Dict[str, Dict[str, Any]], after: Dict[str, Dict[str, Any]]
    ) -> Dict[str, Dict[str, Any]]:
        """Counter/histogram deltas between two snapshots.

        Gauges are point-in-time: the diff carries the ``after`` value.
        Metrics absent from ``before`` diff against zero.
        """
        out: Dict[str, Dict[str, Any]] = {}
        for name, entry in after.items():
            prior = before.get(name)
            kind = entry["type"]
            if kind == "counter":
                base = prior["value"] if prior else 0
                out[name] = {"type": kind, "value": entry["value"] - base}
            elif kind == "gauge":
                out[name] = {"type": kind, "value": entry["value"]}
            else:  # histogram
                base_counts = prior["counts"] if prior else [0] * len(entry["counts"])
                base_count = prior["count"] if prior else 0
                base_sum = prior["sum"] if prior else 0.0
                out[name] = {
                    "type": kind,
                    "buckets": list(entry["buckets"]),
                    "counts": [c - b for c, b in zip(entry["counts"], base_counts)],
                    "count": entry["count"] - base_count,
                    "sum": entry["sum"] - base_sum,
                }
        return out

    def merge_snapshot(self, snapshot: Dict[str, Dict[str, Any]]) -> None:
        """Fold a snapshot (typically a worker's diff) into this registry.

        Counters and histograms accumulate; gauges take the incoming value.
        """
        with self._lock:
            for name, entry in snapshot.items():
                kind = entry["type"]
                if kind == "counter":
                    self.counter(name).inc(int(entry["value"]))
                elif kind == "gauge":
                    self.gauge(name).set(entry["value"])
                elif kind == "histogram":
                    hist = self.histogram(name, buckets=entry["buckets"])
                    if list(hist.bounds) != list(entry["buckets"]):
                        raise ValueError(
                            f"histogram {name!r}: bucket mismatch on merge "
                            f"({list(hist.bounds)} vs {entry['buckets']})"
                        )
                    hist.merge(entry["counts"], entry["count"], entry["sum"])
                else:
                    raise ValueError(f"metric {name!r}: unknown type {kind!r}")


# Process-global registry, mirroring the tracer: instrumented subsystems
# publish into get_registry() so call signatures stay unchanged, and
# worker processes reset it per cell to compute clean diffs.
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return _REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = registry
    return previous


def reset_registry() -> MetricsRegistry:
    """Install and return a fresh registry (start of a run / worker cell)."""
    registry = MetricsRegistry()
    set_registry(registry)
    return registry
