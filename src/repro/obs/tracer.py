"""Hierarchical span tracer.

A :class:`Tracer` records a tree of named spans with wall-clock durations.
Spans nest via a context manager::

    tracer = Tracer()
    with tracer.span("pipeline", workload="mcf"):
        with tracer.span("trace"):
            ...
        with tracer.span("selection", scope=64):
            ...

The export format carries *durations*, never absolute timestamps, so a
span subtree serialized in a worker process can be attached under a parent
span in the coordinator without any clock alignment (process clocks need
not agree; only per-span elapsed time is preserved).

Span names are short path segments ("trace", "selection"); the position in
the tree supplies the hierarchy, so a span's full identity reads like
``sweep/cell/selection``.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

SPAN_SCHEMA_VERSION = 1


@dataclass
class Span:
    """One node in the trace tree: a name, metadata, and elapsed seconds."""

    name: str
    meta: Dict[str, Any] = field(default_factory=dict)
    duration: float = 0.0
    children: List["Span"] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"name": self.name, "duration": round(self.duration, 9)}
        if self.meta:
            out["meta"] = dict(self.meta)
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        span = cls(
            name=str(data["name"]),
            meta=dict(data.get("meta", {})),
            duration=float(data.get("duration", 0.0)),
        )
        span.children = [cls.from_dict(child) for child in data.get("children", [])]
        return span

    def find(self, name: str) -> Optional["Span"]:
        """Depth-first search for the first descendant with ``name``."""
        for child in self.children:
            if child.name == name:
                return child
            found = child.find(name)
            if found is not None:
                return found
        return None

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()


class Tracer:
    """Records a tree of timed spans.

    The tracer always has an implicit (unexported) root; top-level spans
    are the root's children.  ``clock`` is injectable for tests.

    The stack of *open* spans is scoped with :mod:`contextvars`, not
    stored on the instance: concurrent asyncio tasks (and threads, which
    start from a fresh context) each see their own open-span chain, so
    interleaved requests attach children to their own parents instead of
    whichever span another task happens to have open.  The recorded tree
    (``root`` and every ``Span.children`` list) is still shared — only
    the notion of "currently open span" is per-context.
    """

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self.root = Span("root")
        # Default () means "no open span in this context": current is root.
        # The tuple is immutable, so a context copy (asyncio task spawn)
        # can never mutate the parent context's view of the stack.
        self._stack_var: ContextVar[Tuple[Span, ...]] = ContextVar(
            "repro_tracer_stack", default=()
        )

    def _open_spans(self) -> Tuple[Span, ...]:
        return self._stack_var.get()

    @property
    def current(self) -> Span:
        stack = self._open_spans()
        return stack[-1] if stack else self.root

    @property
    def depth(self) -> int:
        """Nesting depth of open spans (0 when only the root is open)."""
        return len(self._open_spans())

    @contextmanager
    def span(self, name: str, **meta: Any) -> Iterator[Span]:
        node = Span(name, dict(meta))
        stack = self._open_spans()
        parent = stack[-1] if stack else self.root
        parent.children.append(node)
        token = self._stack_var.set(stack + (node,))
        start = self._clock()
        try:
            yield node
        finally:
            node.duration += self._clock() - start
            self._stack_var.reset(token)

    def attach(self, payload: Dict[str, Any]) -> List[Span]:
        """Attach serialized spans (a worker's ``to_dict`` output, or a
        single span dict) as children of the currently open span."""
        if "spans" in payload:
            spans = [Span.from_dict(item) for item in payload["spans"]]
        else:
            spans = [Span.from_dict(payload)]
        self.current.children.extend(spans)
        return spans

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": SPAN_SCHEMA_VERSION,
            "spans": [child.to_dict() for child in self.root.children],
        }

    def export(self, path) -> None:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")

    def render(self) -> str:
        """Indented text view of the span tree."""
        lines: List[str] = []

        def emit(span: Span, depth: int) -> None:
            meta = ""
            if span.meta:
                meta = "  " + " ".join(
                    f"{key}={value}" for key, value in sorted(span.meta.items())
                )
            lines.append(f"{'  ' * depth}{span.name:<24s} {span.duration:9.4f}s{meta}")
            for child in span.children:
                emit(child, depth + 1)

        for child in self.root.children:
            emit(child, 0)
        return "\n".join(lines)


# A process-global tracer so instrumented code does not need the tracer
# threaded through every call signature.  Worker processes install their
# own via set_tracer() and ship the resulting subtree back for attach().
_TRACER = Tracer()


def get_tracer() -> Tracer:
    return _TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    global _TRACER
    previous = _TRACER
    _TRACER = tracer
    return previous


def reset_tracer() -> Tracer:
    """Install and return a fresh tracer (start of a run / worker cell)."""
    tracer = Tracer()
    set_tracer(tracer)
    return tracer
