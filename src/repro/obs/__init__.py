"""Observability: hierarchical span tracing + typed metrics registry.

Two process-global singletons back the instrumentation so subsystems do
not need telemetry objects threaded through their signatures:

- :func:`get_tracer` — a :class:`~repro.obs.tracer.Tracer` recording a
  tree of timed spans (pipeline stages, sweep cells, fuzz seeds).
- :func:`get_registry` — a :class:`~repro.obs.metrics.MetricsRegistry`
  of counters/gauges/histograms with stable dotted names (see
  :data:`~repro.obs.export.METRIC_CATALOG`).

Worker processes install fresh instances per cell (``reset_tracer`` /
``reset_registry``), then ship ``Tracer.to_dict()`` spans and a registry
snapshot diff back to the coordinator, which ``attach``es the spans and
``merge_snapshot``s the metrics.  Export formats: JSON (both), flat
Prometheus-style text, and a fixed-width report (metrics).
"""

from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    reset_registry,
    set_registry,
)
from .tracer import Span, Tracer, get_tracer, reset_tracer, set_tracer
from .export import (
    AUXILIARY_METRICS,
    METRIC_CATALOG,
    SNAPSHOT_SCHEMA_VERSION,
    check_snapshot,
    load_snapshot,
    render_report,
    snapshot_document,
    to_prometheus,
    write_snapshot,
)

__all__ = [
    "AUXILIARY_METRICS",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "METRIC_CATALOG",
    "MetricsRegistry",
    "SNAPSHOT_SCHEMA_VERSION",
    "Span",
    "Tracer",
    "check_snapshot",
    "get_registry",
    "get_tracer",
    "load_snapshot",
    "render_report",
    "reset_registry",
    "reset_tracer",
    "set_registry",
    "set_tracer",
    "snapshot_document",
    "to_prometheus",
    "write_snapshot",
]
