"""Snapshot export (JSON + Prometheus text), report rendering, schema check.

The snapshot document format is::

    {"schema": 1, "metrics": {"timing.pthread.launches": {"type": "counter",
                                                          "value": 123}, ...}}

``METRIC_CATALOG`` pins the stable metric names and their types.  CI runs
``repro obs check`` against the snapshot produced by a real pipeline run;
a catalog name missing from the snapshot (the publishing code was removed)
or present with a different type fails the build.  Names *not* in the
catalog may come and go freely.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List

from .metrics import MetricsRegistry

SNAPSHOT_SCHEMA_VERSION = 1

#: Stable metric names -> type.  Every name here is registered by a full
#: pipeline run (trace -> baseline -> selection -> timing) plus the
#: harness cache, so the CI schema check can require all of them.
METRIC_CATALOG: Dict[str, str] = {
    # Functional (trace-collection) engine.
    "functional.runs": "counter",
    "functional.instructions": "counter",
    "functional.loads": "counter",
    "functional.stores": "counter",
    "functional.branches": "counter",
    "functional.l1.misses": "counter",
    "functional.l2.misses": "counter",
    # Compiled basic-block engine.
    "engine.compile.programs": "counter",
    "engine.compile.blocks": "counter",
    # Tiered engine and the persistent codegen cache.
    "engine.tier.compiled_blocks": "counter",
    "engine.tier.interp_blocks": "counter",
    "engine.codegen.cache_hits": "counter",
    "engine.codegen.cache_misses": "counter",
    # Timing core (SimStats totals, accumulated across runs).
    "timing.runs": "counter",
    "timing.instructions": "counter",
    "timing.cycles": "counter",
    "timing.l1.misses": "counter",
    "timing.l2.misses": "counter",
    "timing.l2.covered_full": "counter",
    "timing.l2.covered_partial": "counter",
    "timing.branch.mispredictions": "counter",
    "timing.branch.mispredicts_covered": "counter",
    "timing.pthread.attempts": "counter",
    "timing.pthread.launches": "counter",
    "timing.pthread.drops": "counter",
    "timing.pthread.instructions": "counter",
    "timing.pthread.l2_misses": "counter",
    # Memory hierarchy (timed, multi-threaded model).
    "memory.mt.accesses": "counter",
    "memory.mt.l2_misses": "counter",
    "memory.pt.accesses": "counter",
    "memory.pt.l2_misses": "counter",
    "memory.prefetch.evicted": "counter",
    "memory.prefetch.unclaimed": "counter",
    "memory.l2.mshr.allocations": "counter",
    "memory.l2.mshr.merges": "counter",
    "memory.l2.mshr.full_stalls": "counter",
    "memory.l2.mshr_occupancy": "histogram",
    # Experiment harness / artifact cache.
    "harness.cache.hits": "counter",
    "harness.cache.disk_hits": "counter",
    "harness.cache.misses": "counter",
    "harness.cache.entries": "gauge",
    "harness.cache.bytes": "gauge",
}

#: Metric names published only by *optional* subsystems — the
#: discrete-event timing model and the cross-model parity harness —
#: which a full pipeline run never touches, so they cannot join
#: ``METRIC_CATALOG`` (the CI schema check requires every catalog name
#: in the pipeline's snapshot).  Their types are still pinned: when one
#: of these names does appear in a snapshot, a type change fails the
#: check just like a catalog name.
AUXILIARY_METRICS: Dict[str, str] = {
    # Event-driven timing model (repro.timing.eventsim).
    "eventsim.runs": "counter",
    "eventsim.instructions": "counter",
    "eventsim.events": "counter",
    "eventsim.heap.max_depth": "gauge",
    "eventsim.heap.depth": "histogram",
    "eventsim.fills.max_outstanding": "gauge",
    # Cross-model parity harness (repro.validation.parity).
    "parity.comparisons": "counter",
    "parity.divergences": "counter",
    # Serve daemon (repro.serve).
    "serve.requests.total": "counter",
    "serve.requests.ok": "counter",
    "serve.requests.errors": "counter",
    "serve.requests.rejected": "counter",
    "serve.requests.budget_exceeded": "counter",
    "serve.requests.cache_hits": "counter",
    "serve.queue.depth": "gauge",
    "serve.batch.size": "histogram",
    "serve.request.seconds": "histogram",
}


def snapshot_document(registry: MetricsRegistry) -> Dict[str, Any]:
    return {"schema": SNAPSHOT_SCHEMA_VERSION, "metrics": registry.snapshot()}


def write_snapshot(path, registry: MetricsRegistry) -> Dict[str, Any]:
    doc = snapshot_document(registry)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return doc


def load_snapshot(path) -> Dict[str, Any]:
    doc = json.loads(Path(path).read_text())
    if doc.get("schema") != SNAPSHOT_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported snapshot schema {doc.get('schema')!r} "
            f"(expected {SNAPSHOT_SCHEMA_VERSION})"
        )
    return doc


def _prom_name(name: str) -> str:
    return name.replace(".", "_").replace("-", "_")


def to_prometheus(metrics: Dict[str, Dict[str, Any]]) -> str:
    """Flat Prometheus-style text exposition of a snapshot's metrics."""
    lines: List[str] = []
    for name in sorted(metrics):
        entry = metrics[name]
        prom = _prom_name(name)
        kind = entry["type"]
        lines.append(f"# TYPE {prom} {kind}")
        if kind in ("counter", "gauge"):
            lines.append(f"{prom} {entry['value']}")
        elif kind == "histogram":
            cumulative = 0
            for bound, count in zip(entry["buckets"], entry["counts"]):
                cumulative += count
                lines.append(f'{prom}_bucket{{le="{bound}"}} {cumulative}')
            cumulative += entry["counts"][-1]
            lines.append(f'{prom}_bucket{{le="+Inf"}} {cumulative}')
            lines.append(f"{prom}_sum {entry['sum']}")
            lines.append(f"{prom}_count {entry['count']}")
        else:
            raise ValueError(f"metric {name!r}: unknown type {kind!r}")
    return "\n".join(lines) + ("\n" if lines else "")


def render_report(metrics: Dict[str, Dict[str, Any]]) -> str:
    """Human-readable fixed-width table of a snapshot's metrics."""
    if not metrics:
        return "(no metrics registered)"
    width = max(len(name) for name in metrics)
    lines = []
    for name in sorted(metrics):
        entry = metrics[name]
        kind = entry["type"]
        if kind == "histogram":
            count = entry["count"]
            mean = entry["sum"] / count if count else 0.0
            value = f"count={count} sum={entry['sum']:g} mean={mean:.2f}"
        else:
            value = f"{entry['value']:g}"
        lines.append(f"{name:<{width}}  {kind:<9}  {value}")
    return "\n".join(lines)


def check_snapshot(doc: Dict[str, Any]) -> List[str]:
    """Compare a snapshot document against the catalog.

    Returns a list of problems (empty means the schema check passes):
    catalog names missing from the snapshot, and names whose type changed.
    Auxiliary names (``AUXILIARY_METRICS``) are optional but
    type-checked when present; other non-catalog names are allowed.
    """
    problems: List[str] = []
    metrics = doc.get("metrics", {})
    for name, kind in sorted(METRIC_CATALOG.items()):
        entry = metrics.get(name)
        if entry is None:
            problems.append(f"missing catalog metric: {name} ({kind})")
        elif entry.get("type") != kind:
            problems.append(
                f"type changed: {name} is {entry.get('type')!r}, "
                f"catalog says {kind!r}"
            )
    for name, kind in sorted(AUXILIARY_METRICS.items()):
        entry = metrics.get(name)
        if entry is not None and entry.get("type") != kind:
            problems.append(
                f"type changed: {name} is {entry.get('type')!r}, "
                f"auxiliary catalog says {kind!r}"
            )
    return problems
