"""Sparse word-granular main memory.

Backing store for the functional simulator.  Addresses are byte
addresses; storage is word-granular and sparse (a dict), so workloads
can scatter data structures across a large address space without
allocating it.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.isa.opcodes import WORD_SIZE
from repro.isa.program import DataImage


class MemoryAlignmentError(Exception):
    """Raised when a load or store address is not word-aligned."""


class MainMemory:
    """Flat, sparse, word-granular memory.

    Args:
        image: optional initial contents copied from a program's
            :class:`~repro.isa.program.DataImage`.
    """

    def __init__(self, image: Optional[DataImage] = None) -> None:
        self._words: Dict[int, int] = dict(image.words) if image else {}

    def load(self, addr: int) -> int:
        """Read the word at byte address ``addr`` (0 if uninitialized)."""
        if addr % WORD_SIZE:
            raise MemoryAlignmentError(f"unaligned load: {addr:#x}")
        return self._words.get(addr, 0)

    def store(self, addr: int, value: int) -> None:
        """Write ``value`` to the word at byte address ``addr``."""
        if addr % WORD_SIZE:
            raise MemoryAlignmentError(f"unaligned store: {addr:#x}")
        self._words[addr] = value

    def raw_words(self) -> Dict[int, int]:
        """The live backing dict, for the compiled engine's inlined
        aligned-access fast path (misaligned addresses still go through
        :meth:`load`/:meth:`store` for the alignment error)."""
        return self._words

    def snapshot(self) -> Dict[int, int]:
        """A copy of all initialized words (for checkpoint/restore)."""
        return dict(self._words)

    def restore(self, snapshot: Dict[int, int]) -> None:
        """Replace contents with a previously taken :meth:`snapshot`."""
        self._words = dict(snapshot)

    def __len__(self) -> int:
        return len(self._words)
