"""PC-indexed stride prefetcher.

The paper's opening claim is that certain *problem loads* "defy address
prediction and their misses elude prefetching" — pre-execution exists
for exactly those loads.  This module supplies the comparator that
claim is made against: a classic Chen & Baer style stride prefetcher
(reference [1] of the paper).  Each static load gets a table entry
tracking its last address and stride; once the stride repeats
(confidence), the next ``degree`` line(s) are prefetched into the L2.

The bench ``bench_stride_vs_preexecution`` uses it to show the paper's
motivation quantitatively: stride prefetching covers the suite's
sequential streams and nothing else, while pre-execution covers the
computed/pointer misses stride prediction cannot reach.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass
class _StrideEntry:
    """Per-PC prediction state (two-bit confidence)."""

    last_addr: int
    stride: int = 0
    confidence: int = 0


class StridePrefetcher:
    """Reference-prediction-table stride prefetcher.

    Args:
        table_entries: tracked static loads (direct-mapped by PC).
        threshold: confirmations of a stride before prefetching.
        degree: lines prefetched ahead once confident.
    """

    def __init__(
        self, table_entries: int = 256, threshold: int = 2, degree: int = 2
    ) -> None:
        if table_entries < 1 or threshold < 1 or degree < 1:
            raise ValueError("prefetcher parameters must be >= 1")
        self.table_entries = table_entries
        self.threshold = threshold
        self.degree = degree
        self._table: Dict[int, _StrideEntry] = {}
        # statistics
        self.trainings = 0
        self.predictions = 0

    def observe(self, pc: int, addr: int) -> list:
        """Train on one load and return addresses to prefetch.

        Args:
            pc: static PC of the load.
            addr: its effective address.

        Returns:
            Byte addresses to prefetch (empty unless confident).
        """
        self.trainings += 1
        slot = pc % self.table_entries
        entry = self._table.get(slot)
        if entry is None:
            self._table[slot] = _StrideEntry(last_addr=addr)
            return []
        stride = addr - entry.last_addr
        if stride != 0 and stride == entry.stride:
            if entry.confidence < 3:
                entry.confidence += 1
        else:
            entry.stride = stride
            entry.confidence = 0
        entry.last_addr = addr
        if entry.confidence >= self.threshold and entry.stride != 0:
            self.predictions += 1
            return [
                addr + entry.stride * k for k in range(1, self.degree + 1)
            ]
        return []

    def reset(self) -> None:
        self._table.clear()
        self.trainings = 0
        self.predictions = 0
