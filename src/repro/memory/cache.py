"""Set-associative cache state with LRU replacement.

:class:`Cache` models tag state only — data values always come from the
functional :class:`~repro.memory.main_memory.MainMemory`.  This is
exactly the modelling level the paper's tools need: the functional cache
simulator classifies each access as an L1 hit / L2 hit / L2 miss, and
the timing simulator attaches latencies to those outcomes.

Replacement is true LRU within a set.  The cache is write-back
write-allocate; dirty state is tracked so writeback traffic can be
charged to the bus model.

The tag store is two flat parallel lists (``_tags`` / ``_dirty``) of
``num_sets * assoc`` slots: set ``s`` occupies ``[s*assoc, (s+1)*assoc)``
with the MRU way first and empty slots (``None`` tags) packed at the
tail.  Both simulators hit this structure once or twice per simulated
instruction, so there is deliberately no per-line object — earlier
revisions allocated a ``_Line`` dataclass per resident line and the
allocator dominated the access path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and access latency of one cache level.

    Attributes:
        name: label used in statistics ("L1D", "L2").
        size_bytes: total capacity.
        line_bytes: line (block) size.
        assoc: associativity (ways per set).
        hit_latency: access latency in cycles on a hit.
    """

    name: str
    size_bytes: int
    line_bytes: int
    assoc: int
    hit_latency: int

    def __post_init__(self) -> None:
        if self.size_bytes % (self.line_bytes * self.assoc):
            raise ValueError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"line*assoc {self.line_bytes * self.assoc}"
            )
        if self.line_bytes & (self.line_bytes - 1):
            raise ValueError(f"{self.name}: line size must be a power of two")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.assoc)


class Cache:
    """Tag-state cache with LRU replacement.

    Per-set state lives in flat parallel lists; lookups scan at most
    ``assoc`` slots (via C-speed list containment on a transient
    ``assoc``-long slice) and hits shift the matching way to the MRU
    position with a slice move, so the access path allocates no
    per-line objects.
    """

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        slots = config.num_sets * config.assoc
        self._tags: List[Optional[int]] = [None] * slots
        self._dirty: List[int] = [0] * slots
        self._assoc = config.assoc
        self._line_shift = config.line_bytes.bit_length() - 1
        self._set_mask = config.num_sets - 1
        self._sets_pow2 = config.num_sets & (config.num_sets - 1) == 0
        # statistics
        self.accesses = 0
        self.misses = 0
        self.writebacks = 0

    def line_addr(self, addr: int) -> int:
        """Aligned line address containing byte ``addr``."""
        return (addr >> self._line_shift) << self._line_shift

    def _index(self, addr: int) -> Tuple[int, int]:
        line = addr >> self._line_shift
        if self._sets_pow2:
            return line & self._set_mask, line
        return line % self.config.num_sets, line

    def probe(self, addr: int) -> bool:
        """Check residency without updating LRU state or statistics."""
        set_index, tag = self._index(addr)
        base = set_index * self._assoc
        return tag in self._tags[base : base + self._assoc]

    def access(self, addr: int, is_write: bool = False) -> bool:
        """Access ``addr``; allocate on miss.  Returns hit status.

        On a miss the LRU victim is evicted (counted as a writeback if
        dirty) and the new line allocated MRU.  The touch and fill
        logic is inlined here (rather than calling :meth:`_touch` /
        :meth:`_fill`) because this method runs once or twice per
        simulated instruction; the slow-path entry points share the
        helpers.
        """
        line = addr >> self._line_shift
        if self._sets_pow2:
            set_index = line & self._set_mask
        else:
            set_index = line % self.config.num_sets
        assoc = self._assoc
        base = set_index * assoc
        end = base + assoc
        tags = self._tags
        self.accesses += 1
        if tags[base] == line:
            # MRU hit: no reordering needed; by far the common case in
            # loop-heavy programs, so it skips the set slice entirely.
            if is_write:
                self._dirty[base] = 1
            return True
        ways = tags[base:end]
        if line in ways:
            pos = base + ways.index(line)
            dirty = self._dirty
            if pos != base:
                # Move the hit way to MRU, shifting the rest down.
                d = dirty[pos]
                tags[base + 1 : pos + 1] = tags[base:pos]
                dirty[base + 1 : pos + 1] = dirty[base:pos]
                tags[base] = line
                dirty[base] = d
            if is_write:
                dirty[base] = 1
            return True
        self.misses += 1
        last = end - 1
        dirty = self._dirty
        if tags[last] is not None and dirty[last]:
            self.writebacks += 1
        tags[base + 1 : end] = tags[base:last]
        dirty[base + 1 : end] = dirty[base:last]
        tags[base] = line
        dirty[base] = 1 if is_write else 0
        return False

    def fill(self, addr: int, *, dirty: bool = False) -> None:
        """Install the line containing ``addr`` (prefetch fill path)."""
        if not self.probe(addr):
            self._fill(addr, dirty=dirty)

    def invalidate(self, addr: int) -> bool:
        """Drop the line containing ``addr``; returns True if present."""
        set_index, tag = self._index(addr)
        base = set_index * self._assoc
        end = base + self._assoc
        tags = self._tags
        dirty = self._dirty
        for pos in range(base, end):
            if tags[pos] == tag:
                tags[pos:end] = tags[pos + 1 : end] + [None]
                dirty[pos:end] = dirty[pos + 1 : end] + [0]
                return True
        return False

    def _touch(self, addr: int, is_write: bool) -> bool:
        set_index, tag = self._index(addr)
        base = set_index * self._assoc
        tags = self._tags
        for pos in range(base, base + self._assoc):
            if tags[pos] == tag:
                if pos != base:
                    # Move the hit way to MRU, shifting the rest down.
                    dirty = self._dirty
                    d = dirty[pos]
                    tags[base + 1 : pos + 1] = tags[base:pos]
                    dirty[base + 1 : pos + 1] = dirty[base:pos]
                    tags[base] = tag
                    dirty[base] = d
                if is_write:
                    self._dirty[base] = 1
                return True
        return False

    def _fill(self, addr: int, *, dirty: bool) -> None:
        set_index, tag = self._index(addr)
        base = set_index * self._assoc
        last = base + self._assoc - 1
        tags = self._tags
        dirt = self._dirty
        if tags[last] is not None and dirt[last]:
            self.writebacks += 1
        tags[base + 1 : last + 1] = tags[base:last]
        dirt[base + 1 : last + 1] = dirt[base:last]
        tags[base] = tag
        dirt[base] = 1 if dirty else 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    def miss_rate(self) -> float:
        """Misses per access (0.0 if never accessed)."""
        if not self.accesses:
            return 0.0
        return self.misses / self.accesses

    def reset_stats(self) -> None:
        self.accesses = 0
        self.misses = 0
        self.writebacks = 0

    def publish_metrics(self, registry, prefix: str) -> None:
        """Fold this cache's counters into a metrics registry under
        ``prefix`` (e.g. ``functional.l1``).  Called at run boundaries,
        never from the lookup fast path."""
        registry.counter(f"{prefix}.accesses").inc(self.accesses)
        registry.counter(f"{prefix}.misses").inc(self.misses)
        registry.counter(f"{prefix}.writebacks").inc(self.writebacks)

    def resident_lines(self) -> int:
        """Number of lines currently resident (for tests)."""
        return sum(1 for tag in self._tags if tag is not None)
