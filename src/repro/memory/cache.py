"""Set-associative cache state with LRU replacement.

:class:`Cache` models tag state only — data values always come from the
functional :class:`~repro.memory.main_memory.MainMemory`.  This is
exactly the modelling level the paper's tools need: the functional cache
simulator classifies each access as an L1 hit / L2 hit / L2 miss, and
the timing simulator attaches latencies to those outcomes.

Replacement is true LRU within a set.  The cache is write-back
write-allocate; dirty state is tracked so writeback traffic can be
charged to the bus model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and access latency of one cache level.

    Attributes:
        name: label used in statistics ("L1D", "L2").
        size_bytes: total capacity.
        line_bytes: line (block) size.
        assoc: associativity (ways per set).
        hit_latency: access latency in cycles on a hit.
    """

    name: str
    size_bytes: int
    line_bytes: int
    assoc: int
    hit_latency: int

    def __post_init__(self) -> None:
        if self.size_bytes % (self.line_bytes * self.assoc):
            raise ValueError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"line*assoc {self.line_bytes * self.assoc}"
            )
        if self.line_bytes & (self.line_bytes - 1):
            raise ValueError(f"{self.name}: line size must be a power of two")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.assoc)


@dataclass
class _Line:
    """One cache line's tag state."""

    tag: int
    dirty: bool = False


class Cache:
    """Tag-state cache with LRU replacement.

    The per-set structure is an ordered list of :class:`_Line`, most
    recently used first; lookups are O(associativity), which is small.
    """

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self._sets: List[List[_Line]] = [[] for _ in range(config.num_sets)]
        self._line_shift = config.line_bytes.bit_length() - 1
        self._set_mask = config.num_sets - 1
        self._sets_pow2 = config.num_sets & (config.num_sets - 1) == 0
        # statistics
        self.accesses = 0
        self.misses = 0
        self.writebacks = 0

    def line_addr(self, addr: int) -> int:
        """Aligned line address containing byte ``addr``."""
        return (addr >> self._line_shift) << self._line_shift

    def _index(self, addr: int) -> Tuple[int, int]:
        line = addr >> self._line_shift
        if self._sets_pow2:
            return line & self._set_mask, line
        return line % self.config.num_sets, line

    def probe(self, addr: int) -> bool:
        """Check residency without updating LRU state or statistics."""
        set_index, tag = self._index(addr)
        return any(line.tag == tag for line in self._sets[set_index])

    def access(self, addr: int, is_write: bool = False) -> bool:
        """Access ``addr``; allocate on miss.  Returns hit status.

        On a miss the LRU victim is evicted (counted as a writeback if
        dirty) and the new line allocated MRU.
        """
        hit = self._touch(addr, is_write)
        self.accesses += 1
        if not hit:
            self.misses += 1
            self._fill(addr, dirty=is_write)
        return hit

    def fill(self, addr: int, *, dirty: bool = False) -> None:
        """Install the line containing ``addr`` (prefetch fill path)."""
        if not self.probe(addr):
            self._fill(addr, dirty=dirty)

    def invalidate(self, addr: int) -> bool:
        """Drop the line containing ``addr``; returns True if present."""
        set_index, tag = self._index(addr)
        lines = self._sets[set_index]
        for pos, line in enumerate(lines):
            if line.tag == tag:
                del lines[pos]
                return True
        return False

    def _touch(self, addr: int, is_write: bool) -> bool:
        set_index, tag = self._index(addr)
        lines = self._sets[set_index]
        for pos, line in enumerate(lines):
            if line.tag == tag:
                if pos:
                    del lines[pos]
                    lines.insert(0, line)
                if is_write:
                    line.dirty = True
                return True
        return False

    def _fill(self, addr: int, *, dirty: bool) -> None:
        set_index, tag = self._index(addr)
        lines = self._sets[set_index]
        if len(lines) >= self.config.assoc:
            victim = lines.pop()
            if victim.dirty:
                self.writebacks += 1
        lines.insert(0, _Line(tag=tag, dirty=dirty))

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    def miss_rate(self) -> float:
        """Misses per access (0.0 if never accessed)."""
        if not self.accesses:
            return 0.0
        return self.misses / self.accesses

    def reset_stats(self) -> None:
        self.accesses = 0
        self.misses = 0
        self.writebacks = 0

    def resident_lines(self) -> int:
        """Number of lines currently resident (for tests)."""
        return sum(len(lines) for lines in self._sets)
