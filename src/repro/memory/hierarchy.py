"""Two-level cache hierarchy: functional and timed views.

Two classes share the same geometry:

* :class:`FunctionalHierarchy` classifies each access by the level it
  hits in, with no notion of time.  The trace generator uses it to tag
  every dynamic load with its miss level, which is what the slicer and
  the analytical model consume.

* :class:`TimedHierarchy` adds latency, MSHRs, bus occupancy, and the
  cache-block timestamping the paper uses to classify covered misses
  ("Miss coverage is measured by timestamping cache blocks with p-thread
  request, main thread request, and ready times").  The timing simulator
  calls it with explicit cycle numbers.

Per the paper's methodology, p-thread loads prefetch **only into the
L2** — the L1 fill path is disabled for them so that framework
validation is not perturbed by L1 effects.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.memory.bus import Bus
from repro.memory.cache import Cache, CacheConfig
from repro.memory.mshr import MshrFile


class MemoryLevel(enum.IntEnum):
    """Where an access was satisfied."""

    L1 = 1
    L2 = 2
    MEM = 3


@dataclass(frozen=True)
class HierarchyConfig:
    """Geometry and timing of the full memory system.

    Defaults follow the paper's configuration, scaled where noted:
    16KB/32B/2-way 2-cycle L1, 256KB/64B/4-way 6-cycle L2, 70-cycle
    memory, 32 outstanding misses, 32B busses with the memory bus at a
    quarter of the processor clock.  Workload suites shrink the caches
    (keeping ratios) so that scaled-down working sets exercise the same
    miss regimes as SPEC2000 did against the paper's caches.
    """

    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            name="L1D", size_bytes=16 * 1024, line_bytes=32, assoc=2, hit_latency=2
        )
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            name="L2", size_bytes=256 * 1024, line_bytes=64, assoc=4, hit_latency=6
        )
    )
    mem_latency: int = 70
    mshr_entries: int = 32
    backside_bus_bytes: int = 32
    backside_bus_divisor: int = 1
    memory_bus_bytes: int = 32
    memory_bus_divisor: int = 4

    def scaled(self, factor: int) -> "HierarchyConfig":
        """Return a copy with both cache capacities divided by ``factor``.

        Line sizes and associativities are preserved, so indexing
        behaviour is unchanged — only capacity shrinks.
        """
        if factor < 1:
            raise ValueError("scale factor must be >= 1")
        return HierarchyConfig(
            l1=CacheConfig(
                name=self.l1.name,
                size_bytes=self.l1.size_bytes // factor,
                line_bytes=self.l1.line_bytes,
                assoc=self.l1.assoc,
                hit_latency=self.l1.hit_latency,
            ),
            l2=CacheConfig(
                name=self.l2.name,
                size_bytes=self.l2.size_bytes // factor,
                line_bytes=self.l2.line_bytes,
                assoc=self.l2.assoc,
                hit_latency=self.l2.hit_latency,
            ),
            mem_latency=self.mem_latency,
            mshr_entries=self.mshr_entries,
            backside_bus_bytes=self.backside_bus_bytes,
            backside_bus_divisor=self.backside_bus_divisor,
            memory_bus_bytes=self.memory_bus_bytes,
            memory_bus_divisor=self.memory_bus_divisor,
        )

    def with_mem_latency(self, latency: int) -> "HierarchyConfig":
        """Copy with a different main-memory latency (Figure 8 sweeps)."""
        return HierarchyConfig(
            l1=self.l1,
            l2=self.l2,
            mem_latency=latency,
            mshr_entries=self.mshr_entries,
            backside_bus_bytes=self.backside_bus_bytes,
            backside_bus_divisor=self.backside_bus_divisor,
            memory_bus_bytes=self.memory_bus_bytes,
            memory_bus_divisor=self.memory_bus_divisor,
        )


class FunctionalHierarchy:
    """Untimed two-level hierarchy used by the trace generator."""

    def __init__(self, config: HierarchyConfig) -> None:
        self.config = config
        self.l1 = Cache(config.l1)
        self.l2 = Cache(config.l2)

    def access(self, addr: int, is_write: bool = False) -> MemoryLevel:
        """Access ``addr``; returns the level that satisfied it."""
        return MemoryLevel(self.access_fast(addr, is_write))

    def access_fast(self, addr: int, is_write: bool = False) -> int:
        """:meth:`access` returning a plain int level (1/2/3).

        The simulators call this once per dynamic load/store; returning
        the raw :class:`MemoryLevel` value skips an enum construction
        per access (the enum API stays for everything that wants it).
        """
        if self.l1.access(addr, is_write):
            return 1
        if self.l2.access(addr, is_write):
            return 2
        return 3

    def warm(self, addr: int) -> None:
        """Install ``addr`` in both levels without counting statistics."""
        self.l1.fill(addr)
        self.l2.fill(addr)


@dataclass
class _PrefetchStamp:
    """Timestamps for a line fetched into L2 by a p-thread."""

    request_time: int
    ready_time: int


class CoverageKind(enum.Enum):
    """Classification of a main-thread touch of a p-thread-fetched line."""

    FULL = "full"  # line ready before the main thread asked
    PARTIAL = "partial"  # fill in flight when the main thread asked
    EVICTED = "evicted"  # prefetched line evicted before use


@dataclass
class AccessOutcome:
    """Result of a timed access.

    Attributes:
        level: level that (logically) satisfied the access, *before*
            any p-thread prefetch is credited — i.e. ``MEM`` means this
            would have been an L2 miss in the unassisted program.
        complete: cycle at which the data is available.
        coverage: set when the access touches a p-thread-prefetched
            line for the first time.
    """

    level: MemoryLevel
    complete: int
    coverage: Optional[CoverageKind] = None


class TimedHierarchy:
    """Two-level hierarchy with latency, MSHRs, busses and coverage.

    All methods take the current cycle explicitly; the class holds no
    clock of its own.
    """

    def __init__(self, config: HierarchyConfig, perfect_l2: bool = False) -> None:
        self.config = config
        #: Perfect-L2 mode: fetches from memory complete in an L2 hit
        #: time (misses are still *counted*) — the Table 1 limit study.
        self.perfect_l2 = perfect_l2
        self.l1 = Cache(config.l1)
        self.l2 = Cache(config.l2)
        self.mshrs = MshrFile(config.mshr_entries)
        self.backside_bus = Bus(
            "backside", config.backside_bus_bytes, config.backside_bus_divisor
        )
        self.memory_bus = Bus(
            "memory", config.memory_bus_bytes, config.memory_bus_divisor
        )
        # L2 lines fetched by p-threads and not yet touched by the main
        # thread, keyed by L2 line address.
        self._pt_lines: Dict[int, _PrefetchStamp] = {}
        # Fill completion time of lines still in transit from memory.
        # Tag state is updated at request time (so residency checks
        # work), but an access to an in-flight line cannot complete
        # before the fill does — without this, back-to-back accesses to
        # one missing line would break miss serialization entirely.
        self._line_ready: Dict[int, int] = {}
        # statistics
        self.mt_accesses = 0
        self.mt_l2_misses = 0
        self.pt_accesses = 0
        self.pt_l2_misses = 0
        self.full_covered = 0
        self.partial_covered = 0
        self.partial_covered_cycles = 0
        self.evicted_prefetches = 0
        #: Coverage classification of the most recent ``mt_access_fast``
        #: (``None`` if the access touched no p-thread-fetched line).
        self.last_coverage: Optional[CoverageKind] = None

    # ------------------------------------------------------------------
    # main thread
    # ------------------------------------------------------------------

    def mt_access(self, addr: int, now: int, is_write: bool = False) -> AccessOutcome:
        """Timed main-thread access at cycle ``now``."""
        level, complete = self.mt_access_fast(addr, now, is_write)
        return AccessOutcome(MemoryLevel(level), complete, self.last_coverage)

    def mt_access_fast(
        self, addr: int, now: int, is_write: bool = False
    ) -> Tuple[int, int]:
        """:meth:`mt_access` without the :class:`AccessOutcome` wrapper.

        Returns ``(level, complete)`` as plain ints — the simulators
        issue millions of these per run and the dataclass allocation
        per access dominated the memory path.  Coverage classification
        is published on :attr:`last_coverage` (and the coverage
        counters update exactly as before).
        """
        self.mt_accesses += 1
        self.last_coverage = None
        line2 = self.l2.line_addr(addr)
        stamp = self._pt_lines.pop(line2, None)

        if self.l1.access(addr, is_write):
            complete = now + self.config.l1.hit_latency
            pending = self._line_ready.get(line2)
            if pending is not None and pending > complete:
                complete = pending
            return 1, complete

        if self.l2.access(addr, is_write):
            # L2 hit.  If a p-thread fetched this line, the unassisted
            # program would have missed: classify the coverage.
            complete = now + self._l2_hit_latency(now)
            pending = self._line_ready.get(line2)
            if pending is not None and pending > complete:
                complete = pending
            if stamp is not None:
                if stamp.ready_time <= now:
                    self.last_coverage = CoverageKind.FULL
                    self.full_covered += 1
                else:
                    self.last_coverage = CoverageKind.PARTIAL
                    self.partial_covered += 1
                    saved = max(0, now - stamp.request_time)
                    self.partial_covered_cycles += saved
                    if stamp.ready_time > complete:
                        complete = stamp.ready_time
            return 2, complete

        # L2 miss.
        self.mt_l2_misses += 1
        if stamp is not None:
            # A p-thread prefetched the line but it was evicted before
            # the main thread got to it: an early (wasted) prefetch.
            self.last_coverage = CoverageKind.EVICTED
            self.evicted_prefetches += 1
        return 3, self._fetch_line(line2, now)

    # ------------------------------------------------------------------
    # p-threads
    # ------------------------------------------------------------------

    def pt_access(self, addr: int, now: int) -> AccessOutcome:
        """Timed p-thread load at cycle ``now``.

        P-thread loads read the L1 if the line happens to be resident
        (without refreshing LRU state) but fill only the L2.
        """
        level, complete = self.pt_access_fast(addr, now)
        return AccessOutcome(MemoryLevel(level), complete)

    def pt_access_fast(self, addr: int, now: int) -> Tuple[int, int]:
        """:meth:`pt_access` returning a plain ``(level, complete)``."""
        self.pt_accesses += 1
        line2 = self.l2.line_addr(addr)
        pending = self._line_ready.get(line2)
        if self.l1.probe(addr):
            complete = now + self.config.l1.hit_latency
            if pending is not None and pending > complete:
                complete = pending
            return 1, complete
        if self.l2.access(addr, is_write=False):
            complete = now + self._l2_hit_latency(now)
            if pending is not None and pending > complete:
                complete = pending
            return 2, complete
        self.pt_l2_misses += 1
        complete = self._fetch_line(line2, now)
        # Stamp the line so the main thread's first touch classifies it.
        self._pt_lines[line2] = _PrefetchStamp(request_time=now, ready_time=complete)
        return 3, complete

    def phantom_access(self, addr: int, now: int) -> AccessOutcome:
        """Latency of a load that must not disturb any state.

        Used by the overhead-only validation runs, where p-threads
        execute "but do not access the data cache (thus do not have the
        pre-execution effect)": timing reflects residency, but no fill,
        LRU update, MSHR, bus, or timestamp activity occurs.
        """
        level, complete = self.phantom_access_fast(addr, now)
        return AccessOutcome(MemoryLevel(level), complete)

    def phantom_access_fast(self, addr: int, now: int) -> Tuple[int, int]:
        """:meth:`phantom_access` returning a plain ``(level, complete)``.

        Like the real access paths, a hit on a line whose fill is still
        in flight cannot complete before the fill does, so the pending
        :attr:`_line_ready` time clamps the completion.  Reading that
        timestamp disturbs nothing, which is all the phantom contract
        requires.
        """
        if self.l1.probe(addr):
            level = 1
            complete = now + self.config.l1.hit_latency
        elif self.l2.probe(addr):
            level = 2
            complete = now + self.config.l2.hit_latency
        else:
            return 3, now + self.config.mem_latency
        pending = self._line_ready.get(self.l2.line_addr(addr))
        if pending is not None and pending > complete:
            complete = pending
        return level, complete

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _l2_hit_latency(self, now: int) -> int:
        """L2 hit latency including backside bus occupancy."""
        done = self.backside_bus.request(
            now + self.config.l2.hit_latency, self.config.l1.line_bytes
        )
        return done - now

    def _fetch_line(self, line2: int, now: int) -> int:
        """Fetch ``line2`` from memory into the L2; returns ready time."""
        if self.perfect_l2:
            self.l2.fill(line2)
            return now + self.config.l2.hit_latency
        merged = self.mshrs.lookup(line2, now)
        if merged is not None:
            return merged
        bus_done = self.memory_bus.request(
            now + self.config.mem_latency, self.config.l2.line_bytes
        )
        ready = self.mshrs.allocate(line2, now, bus_done)
        self.l2.fill(line2)
        self._line_ready[line2] = ready
        if len(self._line_ready) > 8192:
            self._line_ready = {
                line: t for line, t in self._line_ready.items() if t > now
            }
        return ready

    def unclaimed_prefetches(self) -> int:
        """P-thread-fetched lines never touched by the main thread."""
        return len(self._pt_lines)

    def publish_metrics(self, registry) -> None:
        """Fold this hierarchy's counters into a metrics registry.

        Called once at the end of a timing run (see
        ``TimingSimulator._publish_metrics``), never from the access
        fast path.  Names belong to the stable catalog in
        :mod:`repro.obs.export`.
        """
        registry.counter("memory.mt.accesses").inc(self.mt_accesses)
        registry.counter("memory.mt.l2_misses").inc(self.mt_l2_misses)
        registry.counter("memory.pt.accesses").inc(self.pt_accesses)
        registry.counter("memory.pt.l2_misses").inc(self.pt_l2_misses)
        registry.counter("memory.prefetch.evicted").inc(self.evicted_prefetches)
        registry.counter("memory.prefetch.unclaimed").inc(
            self.unclaimed_prefetches()
        )
        mshrs = self.mshrs
        registry.counter("memory.l2.mshr.allocations").inc(mshrs.allocations)
        registry.counter("memory.l2.mshr.merges").inc(mshrs.merges)
        registry.counter("memory.l2.mshr.full_stalls").inc(mshrs.full_stalls)
        occupancy = registry.histogram("memory.l2.mshr_occupancy")
        for depth, count in mshrs.occupancy_samples.items():
            occupancy.observe(depth, count)
