"""Memory system: main memory, caches, MSHRs, busses, hierarchies."""

from repro.memory.bus import Bus
from repro.memory.cache import Cache, CacheConfig
from repro.memory.hierarchy import (
    AccessOutcome,
    CoverageKind,
    FunctionalHierarchy,
    HierarchyConfig,
    MemoryLevel,
    TimedHierarchy,
)
from repro.memory.main_memory import MainMemory, MemoryAlignmentError
from repro.memory.mshr import MshrFile
from repro.memory.prefetcher import StridePrefetcher

__all__ = [
    "AccessOutcome",
    "Bus",
    "Cache",
    "CacheConfig",
    "CoverageKind",
    "FunctionalHierarchy",
    "HierarchyConfig",
    "MainMemory",
    "MemoryAlignmentError",
    "MemoryLevel",
    "MshrFile",
    "StridePrefetcher",
    "TimedHierarchy",
]
