"""Bus occupancy model.

The paper's memory system has a 32-byte backside (L2) bus clocked at
processor frequency and a 32-byte memory bus clocked at one quarter
processor frequency.  Bus contention matters: the paper identifies
memory-bus contention as the main source of full-coverage
over-estimation.

The model is slot-based rather than a single ``next_free`` cursor
because requests do not arrive in timestamp order — the simulator
processes a p-thread's whole body (with future timestamps) when it
launches, then returns to earlier main-thread accesses.  Time is
divided into slots one transfer long; each slot carries at most one
transfer, and a request takes the first free slot at or after its
arrival.  This preserves the bus's true throughput limit and resolves
contention locally without ordering assumptions.
"""

from __future__ import annotations

from typing import Dict, Set


class Bus:
    """A serializing transfer resource with slot-based arbitration.

    Args:
        name: label used in statistics.
        width_bytes: bytes transferred per bus clock.
        cycles_per_beat: processor cycles per bus clock (4 for the
            paper's memory bus, 1 for the backside bus).
    """

    def __init__(self, name: str, width_bytes: int, cycles_per_beat: int = 1) -> None:
        if width_bytes < 1 or cycles_per_beat < 1:
            raise ValueError("bus width and clock divisor must be >= 1")
        self.name = name
        self.width_bytes = width_bytes
        self.cycles_per_beat = cycles_per_beat
        # Occupied slot indices, per transfer duration (transfers on one
        # bus are near-homogeneous — line fills — so this rarely holds
        # more than one duration).
        self._slots: Dict[int, Set[int]] = {}
        # statistics
        self.transfers = 0
        self.busy_cycles = 0
        self.wait_cycles = 0

    def transfer_cycles(self, num_bytes: int) -> int:
        """Occupancy in processor cycles for ``num_bytes``."""
        beats = -(-num_bytes // self.width_bytes)  # ceil division
        return beats * self.cycles_per_beat

    def request(self, now: int, num_bytes: int) -> int:
        """Schedule a transfer requested at ``now``.

        Returns the cycle at which the transfer completes.  The request
        occupies the first free slot at or after ``now``; requests may
        arrive in any timestamp order.
        """
        duration = self.transfer_cycles(num_bytes)
        slots = self._slots.setdefault(duration, set())
        index = max(now, 0) // duration
        while index in slots:
            index += 1
        slots.add(index)
        start = max(now, index * duration)
        self.transfers += 1
        self.busy_cycles += duration
        self.wait_cycles += start - now
        return start + duration

    def reset(self) -> None:
        self._slots.clear()
        self.transfers = 0
        self.busy_cycles = 0
        self.wait_cycles = 0
