"""Miss status holding registers (MSHRs).

MSHRs bound the number of simultaneously outstanding cache misses and
merge requests to a line that is already in flight — both effects the
paper's timing simulator models (32 simultaneously outstanding misses,
with p-thread and main-thread requests to the same line merging).

Time is explicit: callers pass the current cycle and receive ready
times; there is no internal clock.
"""

from __future__ import annotations

from typing import Dict, Optional


class MshrFile:
    """A finite set of outstanding line misses.

    Args:
        capacity: maximum simultaneously outstanding misses.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("MSHR capacity must be >= 1")
        self.capacity = capacity
        self._outstanding: Dict[int, int] = {}  # line addr -> ready time
        # statistics
        self.allocations = 0
        self.merges = 0
        self.full_stalls = 0
        # Occupancy (entries in flight, including the new one) sampled
        # at each allocation: occupancy -> count.  Allocations happen
        # only on L2 misses, so this costs one dict update per miss and
        # backs the memory.l2.mshr_occupancy histogram.
        self.occupancy_samples: Dict[int, int] = {}

    def _expire(self, now: int) -> None:
        if self._outstanding:
            done = [line for line, t in self._outstanding.items() if t <= now]
            for line in done:
                del self._outstanding[line]

    def lookup(self, line: int, now: int) -> Optional[int]:
        """If ``line`` is already in flight at ``now``, return its ready
        time (a merge); otherwise ``None``."""
        self._expire(now)
        ready = self._outstanding.get(line)
        if ready is not None:
            self.merges += 1
        return ready

    def allocate(self, line: int, now: int, ready: int) -> int:
        """Allocate an entry for ``line`` completing at ``ready``.

        If all MSHRs are busy the request is delayed until the earliest
        outstanding miss completes; the (possibly pushed-back) ready
        time is returned.
        """
        self._expire(now)
        delay = 0
        if len(self._outstanding) >= self.capacity:
            earliest = min(self._outstanding.values())
            delay = max(0, earliest - now)
            self.full_stalls += 1
            self._expire(earliest)
            # Guard against pathological configs: if still full, drop the
            # oldest entry (it is complete from the requester's view).
            while len(self._outstanding) >= self.capacity:
                oldest = min(self._outstanding, key=self._outstanding.get)
                del self._outstanding[oldest]
        self.allocations += 1
        occupancy = len(self._outstanding) + 1
        self.occupancy_samples[occupancy] = (
            self.occupancy_samples.get(occupancy, 0) + 1
        )
        self._outstanding[line] = ready + delay
        return ready + delay

    def outstanding(self, now: int) -> int:
        """Number of misses in flight at ``now``."""
        self._expire(now)
        return len(self._outstanding)

    def reset(self) -> None:
        self._outstanding.clear()
        self.allocations = 0
        self.merges = 0
        self.full_stalls = 0
        self.occupancy_samples.clear()
