#!/usr/bin/env python
"""Quickstart: run the whole pre-execution pipeline on one workload.

This walks the paper's tool flow end to end on the pharmacy example
(Figure 1): trace the program, build slice trees for its L2 misses,
select static p-threads with aggregate advantage, and measure them in
the timing simulator.

Run:
    python examples/quickstart.py [workload]
"""

import sys

from repro import ExperimentConfig, ExperimentRunner


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "pharmacy"
    runner = ExperimentRunner()
    print(f"Running the full pipeline on {workload!r} ...\n")
    result = runner.run(ExperimentConfig(workload=workload, validate=True))

    print("Selected static p-threads")
    print("-------------------------")
    print(result.selection.describe())
    for pthread in result.selection.pthreads:
        print(f"\ntrigger #{pthread.trigger_pc:04d}:")
        print(pthread.body.render())

    print("\nSimulation")
    print("----------")
    print(result.baseline.describe())
    print(result.preexec.describe())
    for name, stats in result.validation.items():
        print(stats.describe())

    print(
        f"\nspeedup {result.speedup:+.1%}  "
        f"coverage {result.coverage:.1%} "
        f"(full {result.full_coverage:.1%})  "
        f"overhead {result.preexec.instruction_overhead:.1%} "
        "p-thread instructions per retired instruction"
    )


if __name__ == "__main__":
    main()
