#!/usr/bin/env python
"""The paper, section by section, on the running example.

Reproduces the narrative of §2–§3 with real artifacts:

1. the pharmacy loop and its problem load (Figure 1);
2. the slice tree with its two computation arms and ``DCpt-cm`` /
   ``DISTpl`` annotations (Figure 3);
3. the aggregate-advantage calculation for the six candidate
   p-threads of Figure 2, printed exactly as the paper tabulates them;
4. selection + merging: the final merged p-thread.

Run:
    python examples/paper_walkthrough.py
"""

from repro.engine import run_program
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.model import ModelParams, SelectionConstraints, evaluate_candidate
from repro.pthreads import PThreadBody
from repro.selection import select_pthreads
from repro.slicing import build_slice_trees
from repro.workloads import pharmacy
from repro.workloads.common import SUITE_HIERARCHY


def figure1_program():
    print("=" * 72)
    print("Figure 1: the pharmacy loop (problem load = paper #09)")
    print("=" * 72)
    program = pharmacy.build(**pharmacy.INPUTS["train"])
    for inst in program.instructions[1:15]:
        marker = "  <-- problem load" if inst.pc == pharmacy.PROBLEM_LOAD_PC else ""
        print(f"  #{inst.pc - 1:02d}: {inst}{marker}")
    return program


def figure3_slice_tree(program):
    print()
    print("=" * 72)
    print("Figure 3: the slice tree for the problem load")
    print("=" * 72)
    result = run_program(program, SUITE_HIERARCHY)
    trees = build_slice_trees(result.trace, scope=1024, max_length=24)
    tree = trees[pharmacy.PROBLEM_LOAD_PC]
    tree.check_invariants()
    print(tree.render(program, max_depth=6))
    print(
        f"\n(total {tree.total_misses()} misses; note the two arms "
        "through the #04/#06 analogues and the repeated induction nodes "
        "— induction unrolling.)"
    )
    return result


def figure2_advantage():
    print()
    print("=" * 72)
    print("Figure 2: aggregate advantage for the six candidates")
    print("=" * 72)
    params = ModelParams(
        bw_seq=4, unassisted_ipc=1.0, mem_latency=8, load_latency=1
    )
    i11 = Instruction(Opcode.ADDI, rd=5, rs1=5, imm=16, pc=11)
    i04 = Instruction(Opcode.LW, rd=7, rs1=5, imm=4, pc=4)
    i07 = Instruction(Opcode.SLLI, rd=7, rs1=7, imm=2, pc=7)
    i08 = Instruction(Opcode.ADDI, rd=7, rs1=7, imm=8192, pc=8)
    i09 = Instruction(Opcode.LW, rd=8, rs1=7, imm=0, pc=9)
    candidates = [
        ("1 (trig #08)", [i09], [2], 80, 40),
        ("2 (trig #07)", [i08, i09], [2, 3], 80, 40),
        ("3 (trig #04)", [i07, i08, i09], [3, 4, 5], 60, 30),
        ("4 (trig #11)", [i04, i07, i08, i09], [8, 10, 11, 12], 100, 30),
        (
            "5 (trig #11, 1x unroll)",
            [i11, i04, i07, i08, i09],
            [13, 20, 22, 23, 24],
            100,
            30,
        ),
        (
            "6 (trig #11, 2x unroll)",
            [i11, i11, i04, i07, i08, i09],
            [13, 25, 32, 34, 35, 36],
            100,
            30,
        ),
    ]
    print(
        f"{'candidate':>24s} {'SIZE':>4s} {'SCDHmt':>7s} {'SCDHpt':>7s} "
        f"{'LT':>4s} {'LTagg':>6s} {'OHagg':>6s} {'ADVagg':>7s}"
    )
    for name, insts, dists, dc_trig, dc_ptcm in candidates:
        score = evaluate_candidate(
            11, 9, len(insts), insts, dists, PThreadBody(insts),
            dc_trig, dc_ptcm, params,
        )
        print(
            f"{name:>24s} {score.size:4d} {score.scdh_mt:7.1f} "
            f"{score.scdh_pt:7.1f} {score.lt:4.0f} {score.lt_agg:6.0f} "
            f"{score.oh_agg:6.1f} {score.adv_agg:7.1f}"
        )
    print(
        "\n(the paper reports -10, -20, 7.5, 40, 177 '(63 overhead "
        "cycles)', 165 — candidate 5 wins.)"
    )


def merged_selection(program, result):
    print()
    print("=" * 72)
    print("Section 3.3: selection + merging on the real trace")
    print("=" * 72)
    params = ModelParams(bw_seq=8, unassisted_ipc=0.6, mem_latency=70, load_latency=2)
    selection = select_pthreads(
        program, result.trace, params, SelectionConstraints()
    )
    print(selection.describe())
    for pthread in selection.pthreads:
        print(f"\nmerged p-thread (trigger #{pthread.trigger_pc:04d}, "
              f"covers loads {pthread.target_load_pcs}):")
        print(pthread.body.render())


def main() -> None:
    program = figure1_program()
    result = figure3_slice_tree(program)
    figure2_advantage()
    merged_selection(program, result)


if __name__ == "__main__":
    main()
