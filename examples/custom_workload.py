#!/usr/bin/env python
"""Bring your own kernel: select p-threads for a custom program.

Shows the library as a downstream user would drive it, without the
workload suite or the harness: write an assembly kernel, attach data,
trace it, pick p-threads, and simulate — each pipeline stage called
explicitly.

The kernel is a sparse matrix-vector product in CSR form: row pointers
and column indices stream in (cache friendly), while the gather
``x[col[k]]`` is the problem load.

Run:
    python examples/custom_workload.py
"""

import random

from repro.engine import run_program
from repro.isa import DataImage, assemble
from repro.model import ModelParams, SelectionConstraints
from repro.selection import select_pthreads
from repro.slicing import build_slice_trees
from repro.timing import BASELINE, PRE_EXECUTION, TimingSimulator
from repro.workloads.common import SUITE_HIERARCHY

ROWS = 600
NNZ_PER_ROW = 6
X_WORDS = 64 * 1024  # 256KB dense vector: gathers miss the 32KB L2

SOURCE = """
start:
    addi a0, zero, 0            # row
    addi a1, zero, {rows}
    addi s0, zero, {colidx}     # column index cursor
    addi s1, zero, {values}     # value cursor
    addi s3, zero, {y}          # output cursor
row_loop:
    bge  a0, a1, done
    addi t6, zero, {nnz}        # nonzeros in this row
    addi s4, zero, 0            # accumulator
nnz_loop:
    beq  t6, zero, row_done
    lw   t0, 0(s0)              # col = colidx[k]      (sequential)
    lw   t1, 0(s1)              # a = values[k]        (sequential)
    slli t2, t0, 2
    addi t2, t2, {x}
    lw   t3, 0(t2)              # x[col]               (problem load)
    mul  t4, t1, t3
    add  s4, s4, t4
    addi s0, s0, 4
    addi s1, s1, 4
    addi t6, t6, -1
    j    nnz_loop
row_done:
    sw   s4, 0(s3)              # y[row] = acc
    addi s3, s3, 4
    addi a0, a0, 1
    j    row_loop
done:
    halt
"""


def build_spmv():
    rng = random.Random(2002)
    data = DataImage()
    colidx_base, values_base, x_base, y_base = (
        1 << 20, 2 << 20, 3 << 20, 4 << 20,
    )
    nnz = ROWS * NNZ_PER_ROW
    data.store_words(
        colidx_base, (rng.randrange(X_WORDS) for _ in range(nnz))
    )
    data.store_words(values_base, (rng.randint(1, 9) for _ in range(nnz)))
    data.store_words(x_base, (rng.randint(1, 99) for _ in range(X_WORDS)))
    source = SOURCE.format(
        rows=ROWS, nnz=NNZ_PER_ROW, colidx=colidx_base,
        values=values_base, x=x_base, y=y_base,
    )
    return assemble(source, data=data, name="spmv")


def main() -> None:
    program = build_spmv()
    hierarchy = SUITE_HIERARCHY

    # Stage 1: functional trace with miss classification.
    trace_result = run_program(program, hierarchy)
    print(
        f"traced {trace_result.instructions} instructions, "
        f"{trace_result.l2_misses} L2 misses"
    )

    # Stage 2: slice trees (inspect them directly if you like).
    trees = build_slice_trees(trace_result.trace, scope=1024, max_length=48)
    for load_pc, tree in sorted(trees.items()):
        print(
            f"  static load #{load_pc:04d}: {tree.total_misses()} misses, "
            f"{tree.num_nodes()} tree nodes"
        )

    # Stage 3: baseline timing -> the model's IPC input.
    baseline = TimingSimulator(program, hierarchy).run(BASELINE)
    print(f"baseline: {baseline.describe()}")

    # Stage 4: selection.
    params = ModelParams(
        bw_seq=8,
        unassisted_ipc=baseline.ipc,
        mem_latency=hierarchy.mem_latency,
        load_latency=hierarchy.l1.hit_latency,
    )
    selection = select_pthreads(
        program, trace_result.trace, params,
        SelectionConstraints(scope=1024, max_pthread_length=32),
    )
    print(selection.describe())
    for pthread in selection.pthreads:
        print(pthread.body.render())

    # Stage 5: measure.
    preexec = TimingSimulator(
        program, hierarchy, pthreads=selection.pthreads
    ).run(PRE_EXECUTION)
    print(preexec.describe())
    print(
        f"\nSpMV gather speedup: {preexec.speedup_over(baseline):+.1%} "
        f"(covered {preexec.coverage_fraction:.1%} of L2 misses)"
    )


if __name__ == "__main__":
    main()
