#!/usr/bin/env python
"""Why program structure decides pre-execution's fate.

The paper's central observation: "maximum pre-execution effectiveness
and the p-threads required to achieve it are a function of program
structure."  This example contrasts the two extremes of the suite:

* ``mcf`` — serial pointer chasing.  Every miss's address is the value
  of the previous miss; a p-thread mimicking the chain serializes
  through the same misses, so there is almost no sequencing advantage
  to exploit and full coverage stays low.
* ``vpr.p`` — register-computed addresses.  The block index comes from
  a multiplicative generator living entirely in registers; a p-thread
  can run the generator arbitrarily far ahead at one ``mul`` per
  iteration of lookahead, so coverage is nearly total.

Run:
    python examples/pointer_chasing_vs_computed.py
"""

from repro import ExperimentConfig, ExperimentRunner
from repro.workloads import pharmacy


def show(result) -> None:
    selection = result.selection
    print(f"  baseline IPC      : {result.baseline.ipc:.3f}")
    print(f"  pre-exec IPC      : {result.preexec.ipc:.3f} "
          f"({result.speedup:+.1%})")
    print(f"  L2 misses         : {result.preexec.l2_misses}")
    print(f"  covered           : {result.coverage:.1%} "
          f"(full {result.full_coverage:.1%})")
    print(f"  static p-threads  : {len(selection.pthreads)}")
    if selection.pthreads:
        main = max(
            selection.pthreads, key=lambda p: p.prediction.misses_covered
        )
        loads = sum(1 for i in main.body.instructions if i.is_load)
        print(f"  main p-thread     : {main.size} instructions, "
              f"{loads} of them loads")
        print("\n  body of the dominant p-thread:")
        print(main.body.render())


def main() -> None:
    runner = ExperimentRunner()

    print("=" * 70)
    print("mcf analogue: serial pointer chains (the hard case)")
    print("=" * 70)
    show(runner.run(ExperimentConfig(workload="mcf")))

    print()
    print("=" * 70)
    print("vpr.p analogue: register-computed addresses (the easy case)")
    print("=" * 70)
    show(runner.run(ExperimentConfig(workload="vpr.p")))

    print()
    print("=" * 70)
    print("takeaway")
    print("=" * 70)
    print(
        "mcf's p-thread is itself a chain of loads — each unrolling\n"
        "level adds a serial miss to the p-thread's own critical path,\n"
        "so lookahead cannot grow.  vpr.p's p-thread adds one 3-cycle\n"
        "multiply per level while the main thread spends a whole\n"
        "iteration, so lookahead grows with every instruction the\n"
        "length budget allows.  The framework discovers both facts\n"
        "from raw statistics, with no special-casing."
    )


if __name__ == "__main__":
    main()
