#!/usr/bin/env python
"""Branch pre-execution: the paper's footnote 1, realized.

"Pre-execution has also been proposed as a way of dealing with problem
(i.e., frequently mis-predicted) branches.  While we do not explicitly
discuss branch pre-execution here, all of our methods do apply in that
scenario."

This example applies them to the vpr.p analogue, whose accept test
branches on freshly loaded data and mispredicts ~50% of the time:

1. profile the trace through the front-end predictor to find problem
   branches;
2. build slice trees rooted at the *mispredicted dynamic instances*;
3. score candidates with aggregate advantage, with the misprediction
   penalty as the latency to tolerate;
4. simulate: branch p-threads end in the targeted branch, and their
   early-computed outcomes suppress the fetch-redirect penalty.

Run:
    python examples/branch_preexecution.py [workload]
"""

import sys

from repro.engine import run_program
from repro.model import ModelParams, SelectionConstraints
from repro.selection import (
    problem_branches,
    profile_branches,
    select_branch_pthreads,
)
from repro.timing import BASELINE, PRE_EXECUTION, TimingSimulator
from repro.workloads import build


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "vpr.p"
    workload = build(name, "train")
    trace = run_program(workload.program, workload.hierarchy)
    base = TimingSimulator(workload.program, workload.hierarchy).run(BASELINE)

    print(f"{name}: baseline {base.describe()}")
    print(f"misprediction rate {base.misprediction_rate:.1%}\n")

    profiles = profile_branches(trace.trace, workload.program)
    problems = problem_branches(profiles)
    print("problem branches (pc, executions, mispredictions, rate):")
    for profile in problems:
        print(
            f"  #{profile.pc:04d}  {profile.executions:6d} "
            f"{profile.mispredictions:6d}  {profile.rate:.1%}"
        )

    params = ModelParams(
        bw_seq=8,
        unassisted_ipc=max(base.ipc, 0.05),
        mem_latency=workload.hierarchy.mem_latency,
        load_latency=workload.hierarchy.l1.hit_latency,
    )
    selection = select_branch_pthreads(
        workload.program, trace.trace, params, SelectionConstraints(),
        mispredict_penalty=10,
    )
    print(f"\n{len(selection.pthreads)} branch p-thread(s) selected:")
    for pthread in selection.pthreads:
        print(
            f"\ntrigger #{pthread.trigger_pc:04d}, "
            f"{pthread.instances_ahead} instance(s) of lookahead:"
        )
        print(pthread.body.render())

    pre = TimingSimulator(
        workload.program, workload.hierarchy, pthreads=selection.pthreads
    ).run(PRE_EXECUTION)
    print(f"\n{pre.describe()}")
    print(
        f"mispredictions {pre.mispredictions}, "
        f"redirects suppressed {pre.mispredicts_covered} "
        f"({pre.mispredicts_covered / max(1, pre.mispredictions):.1%})"
    )
    print(f"speedup {pre.speedup_over(base):+.1%}")


if __name__ == "__main__":
    main()
